// Package kernel builds the guest operating system of this reproduction: a
// miniature commodity kernel expressed entirely in the SVA virtual
// instruction set (no host Go runs "inside" it).  It has the structure the
// paper's porting effort assumes: custom allocators (bootmem, a page
// allocator, kmem_cache slabs with SLAB_NO_REAP, kmalloc size classes),
// processes with fork/exec/wait and a scheduler built on llva.save.integer
// / llva.load.integer, a VFS (ramfs + pipes + console), signal dispatch via
// llva.ipush.function, a copy-from-user library (separately compilable —
// the lever behind the paper's one missed exploit), network/driver modules
// containing the five historical vulnerabilities, and a syscall layer
// registered through sva.register.syscall.
//
// Every function carries a Subsystem tag mirroring the paper's Table 4
// sections, so the safety compiler can exclude mm/lib/character-drivers
// exactly as §7.1 did, and so porting-effort metrics can be computed.
package kernel

import (
	"sva/internal/abi"
	"sva/internal/ir"
	"sva/internal/svaops"
)

// Subsystem tags (Table 4 rows).
const (
	SubCore    = "core"          // arch-independent core
	SubMM      = "mm"            // memory subsystem (excluded as-tested)
	SubLib     = "lib"           // utility library incl. user copies (excluded as-tested)
	SubFS      = "fs"            // core filesystem
	SubNet     = "net/protocols" // network protocols (vulnerable modules live here)
	SubNetDrv  = "net/drivers"   // network drivers
	SubCharDrv = "drivers/char"  // character drivers (excluded as-tested)
	SubBlkDrv  = "drivers/block" // block drivers (included, like the paper's)
	SubArchDep = "arch"          // the SVA-OS port layer
)

// Syscall numbers and errno values live in internal/abi (shared with
// userland); aliases keep kernel code terse.
const (
	SysExit               = abi.SysExit
	SysFork               = abi.SysFork
	SysRead               = abi.SysRead
	SysWrite              = abi.SysWrite
	SysOpen               = abi.SysOpen
	SysClose              = abi.SysClose
	SysWaitpid            = abi.SysWaitpid
	SysUnlink             = abi.SysUnlink
	SysExecve             = abi.SysExecve
	SysLseek              = abi.SysLseek
	SysGetpid             = abi.SysGetpid
	SysKill               = abi.SysKill
	SysDup                = abi.SysDup
	SysPipe               = abi.SysPipe
	SysBrk                = abi.SysBrk
	SysSigaction          = abi.SysSigaction
	SysGetrusage          = abi.SysGetrusage
	SysGettimeofday       = abi.SysGettimeofday
	SysNetSend            = abi.SysNetSend
	SysNetRecv            = abi.SysNetRecv
	SysNetServe           = abi.SysNetServe
	SysNetPump            = abi.SysNetPump
	SysChanSend           = abi.SysChanSend
	SysChanRecv           = abi.SysChanRecv
	SysYield              = abi.SysYield
	SysSetsockoptMSFilter = abi.SysSetsockoptMSFilter
	SysIGMPInput          = abi.SysIGMPInput
	SysBTIoctl            = abi.SysBTIoctl
	SysPollEvents         = abi.SysPollEvents
	SysCoreDump           = abi.SysCoreDump

	EPERM     = abi.EPERM
	EHOSTDOWN = abi.EHOSTDOWN
	ENOENT    = abi.ENOENT
	ESRCH     = abi.ESRCH
	EBADF     = abi.EBADF
	ECHILD    = abi.ECHILD
	EAGAIN    = abi.EAGAIN
	ENOMEM    = abi.ENOMEM
	EFAULT    = abi.EFAULT
	EINVAL    = abi.EINVAL
	ENFILE    = abi.ENFILE
	EMFILE    = abi.EMFILE
	ENOSYS    = abi.ENOSYS
)

// Guest memory layout constants (agreeing with the VM's map).
const (
	PageSize = 4096

	BootmemBase = 0x8000_0000
	BootmemTop  = 0x8010_0000
	PageBase    = 0x8010_0000
	PageTop     = 0xC000_0000

	// User dynamic memory: program heaps grow up, stacks grow down.
	UserDynBase   = 0x2000_0000
	UserStackTop  = 0x5000_0000
	UserStackSize = 0x40_000 // 256 KiB per process
	UserBrkArena  = 0x10_0000

	NumPids      = 64
	NumFiles     = 16 // per-task fd table
	NumDentries  = 64
	TaskStothers = 0
)

// Limits for kernel tables.
const (
	KStackSize = 64 * 1024
	StateBufSz = 64 // opaque integer-state handle buffer
	// MaxCPUs bounds the per-CPU data arrays (current_task, sched_target,
	// smp_claimed).  It matches vm.MaxVCPUs; slot 0 is the boot processor.
	MaxCPUs = 32
)

// File type constants.
const (
	InodeFile = 1
	InodeDir  = 2
	InodePipe = 3
	InodeCons = 4
	InodeBlk  = 5
)

// Task states.
const (
	TaskRunnable = 1
	TaskWaiting  = 2 // in waitpid
	TaskVfork    = 3 // parent suspended until child exec/exit
	TaskBlocked  = 4 // pipe I/O
	TaskZombie   = 5
	// TaskSMPReady marks a task fabricated by smp_spawn and parked until an
	// idle virtual CPU claims it with a compare-and-swap (smp_take).
	TaskSMPReady = 6
	TaskFree     = 0
)

// Signal constants.
const (
	NumSigs = 32
)

// K is the kernel build context: the module, builder, interned types and
// well-known globals shared by all subsystem builders.
type K struct {
	M *ir.Module
	B *ir.Builder

	// Types.
	BP     *ir.Type // i8*
	TaskT  *ir.Type
	FileT  *ir.Type
	InodeT *ir.Type
	FopsT  *ir.Type
	PipeT  *ir.Type
	CacheT *ir.Type
	DentT  *ir.Type
	SockT  *ir.Type

	// Shared globals.
	Current   *ir.Global // current task pointer (§6.3: a global, not stack masking)
	PidTable  *ir.Global // pid -> task*
	NextPid   *ir.Global
	SchedTgt  *ir.Global // schedule() handshake target
	Resuming  *ir.Global
	ConsFops  *ir.Global
	BlkFops   *ir.Global
	RamFops   *ir.Global
	PipeRFops *ir.Global
	PipeWFops *ir.Global
	Dentries  *ir.Global
	ProgTable *ir.Global // exec()able program registry

	// Porting ledger: counts of lines by category per subsystem (Table 4).
	Ledger *Ledger
}

// Ledger records the porting-effort accounting that regenerates Table 4.
type Ledger struct {
	// LOC counts total emitted "source lines" (IR instructions stand in
	// for source lines) per subsystem.
	LOC map[string]int
	// SVAOS counts SVA-OS call sites per subsystem (column "SVA-OS").
	SVAOS map[string]int
	// Alloc counts allocator-porting lines per subsystem (column
	// "Allocators"): allocator declarations + size functions + reap flags.
	Alloc map[string]int
	// Analysis counts analysis-improvement changes per subsystem (column
	// "Analysis"): signature fixes, devirtualization asserts,
	// pseudo-allocs, current-task-global rewrites.
	Analysis map[string]int
}

func newLedger() *Ledger {
	return &Ledger{
		LOC:      map[string]int{},
		SVAOS:    map[string]int{},
		Alloc:    map[string]int{},
		Analysis: map[string]int{},
	}
}

// Image is the built kernel.
type Image struct {
	Kernel *ir.Module
	// Entry is the kernel entry function name.
	Entry  string
	Ledger *Ledger
}

// Build assembles the complete guest kernel module.
func Build() *Image {
	m := ir.NewModule("vkernel")
	k := &K{M: m, B: ir.NewBuilder(m), Ledger: newLedger()}
	k.defineTypes()
	k.defineGlobals()
	k.buildMM()       // bootmem, page allocator, kmem_cache, kmalloc, vmalloc
	k.buildLib()      // memcpy wrappers, user-copy library
	k.buildVFS()      // inodes, dentries, files, ramfs, console
	k.buildPipe()     // pipefs
	k.buildProc()     // tasks, scheduler, fork/exec/exit/wait
	k.buildSignal()   // sigaction/kill + dispatch
	k.buildDrivers()  // net driver + character drivers (excluded as-tested)
	k.buildNetRing()  // descriptor-ring NIC driver + socket-serve loop
	k.buildChanRing() // inter-domain channel driver
	k.buildNet()      // sockets + vulnerable protocol modules
	k.buildCoreDump() // the ELF core-dump path (the missed exploit's home)
	k.buildFSInit()   // wires fops tables to driver/pipe implementations
	k.buildSyscalls() // dispatch table registration
	k.buildEntry()    // kernel_entry: boot sequence
	k.B.Seal()
	return &Image{Kernel: m, Entry: "kernel_entry", Ledger: k.Ledger}
}

// defineTypes declares the kernel's core structures.  The layout choices
// mirror the paper's porting advice: the initial task is a plain struct
// (not a union with the stack), and the current task lives in an
// easy-to-analyze global (§6.3).
func (k *K) defineTypes() {
	k.BP = svaops.BytePtr

	k.FopsT = ir.NamedStruct("fops_t")
	k.InodeT = ir.NamedStruct("inode_t")
	k.FileT = ir.NamedStruct("file_t")
	k.TaskT = ir.NamedStruct("task_t")
	k.PipeT = ir.NamedStruct("pipe_t")
	k.CacheT = ir.NamedStruct("kmem_cache_t")
	k.DentT = ir.NamedStruct("dentry_t")
	k.SockT = ir.NamedStruct("socket_t")

	// read(file, buf, n) -> i64 ; write(file, buf, n) -> i64
	rwSig := ir.FuncOf(ir.I64, []*ir.Type{ir.PointerTo(k.FileT), ir.I64, ir.I64}, false)
	k.FopsT.SetBody(
		ir.PointerTo(rwSig), // 0: read
		ir.PointerTo(rwSig), // 1: write
		ir.PointerTo(ir.FuncOf(ir.I64, []*ir.Type{ir.PointerTo(k.FileT)}, false)), // 2: release
	)

	k.InodeT.SetBody(
		ir.I64,                // 0: kind (InodeFile/Dir/Pipe/Cons)
		ir.I64,                // 1: size
		k.BP,                  // 2: data buffer (ramfs)
		ir.I64,                // 3: capacity
		ir.PointerTo(k.PipeT), // 4: pipe state (pipes only)
		ir.I64,                // 5: nlink
	)

	k.FileT.SetBody(
		ir.PointerTo(k.InodeT), // 0: inode
		ir.I64,                 // 1: pos
		ir.I64,                 // 2: refcnt
		ir.PointerTo(k.FopsT),  // 3: ops
		ir.I64,                 // 4: flags (1 = pipe write end)
	)

	k.PipeT.SetBody(
		k.BP,   // 0: ring buffer
		ir.I64, // 1: capacity
		ir.I64, // 2: rpos
		ir.I64, // 3: wpos
		ir.I64, // 4: readers
		ir.I64, // 5: writers
	)

	k.TaskT.SetBody(
		ir.I64,                        // 0: pid
		ir.I64,                        // 1: state
		ir.I64,                        // 2: parent pid
		ir.I64,                        // 3: kstack top
		ir.ArrayOf(StateBufSz, ir.I8), // 4: saved integer state handle
		ir.ArrayOf(NumFiles, ir.PointerTo(k.FileT)), // 5: fd table
		ir.I64,                      // 6: exit code
		ir.ArrayOf(NumSigs, ir.I64), // 7: signal handlers (fn addrs)
		ir.I64,                      // 8: pending signal bitmask
		ir.I64,                      // 9: brk base
		ir.I64,                      // 10: brk current
		ir.I64,                      // 11: user stack top
		ir.I64,                      // 12: wait-target pid (waitpid)
		ir.I64,                      // 13: utime (cycles at last switch)
	)

	k.CacheT.SetBody(
		ir.I64, // 0: object size
		ir.I64, // 1: free list head (address of first free object, 0 none)
		ir.I64, // 2: flags (SLAB_NO_REAP)
		ir.I64, // 3: objects per slab
		ir.I64, // 4: total objects allocated (stats)
	)

	k.DentT.SetBody(
		ir.ArrayOf(24, ir.I8),  // 0: name
		ir.PointerTo(k.InodeT), // 1: inode
		ir.I64,                 // 2: used
	)

	k.SockT.SetBody(
		ir.I64, // 0: bound port
		ir.I64, // 1: state
	)
}

// ProgEntryT describes one registered user program (name + entry address).
var progNameLen = 24

// defineGlobals declares globals shared across subsystems.
func (k *K) defineGlobals() {
	// current_task and sched_target are per-CPU arrays indexed by
	// sva.cpu.id.  Slot 0 sits at the global's base address, so the host
	// boot loader's uniprocessor pokes (which write the bare symbol) keep
	// addressing the boot processor unchanged.
	k.Current = k.global("current_task", ir.ArrayOf(MaxCPUs, ir.PointerTo(k.TaskT)), nil, SubCore)
	k.Ledger.Analysis[SubCore]++ // §6.3: current-task global instead of stack masking
	k.PidTable = k.global("pid_table", ir.ArrayOf(NumPids, ir.PointerTo(k.TaskT)), nil, SubCore)
	k.NextPid = k.global("next_pid", ir.I64, c64(2), SubCore)
	k.SchedTgt = k.global("sched_target", ir.ArrayOf(MaxCPUs, ir.PointerTo(k.TaskT)), nil, SubCore)
	k.Resuming = k.global("sched_resuming", ir.I64, c64(0), SubCore)
	k.ConsFops = k.global("console_fops", k.FopsT, nil, SubFS)
	k.BlkFops = k.global("blkdev_fops", k.FopsT, nil, SubFS)
	k.RamFops = k.global("ramfs_fops", k.FopsT, nil, SubFS)
	k.PipeRFops = k.global("pipe_read_fops", k.FopsT, nil, SubFS)
	k.PipeWFops = k.global("pipe_write_fops", k.FopsT, nil, SubFS)
	k.Dentries = k.global("dentries", ir.ArrayOf(NumDentries, k.DentT), nil, SubFS)
	progT := ir.StructOf(ir.ArrayOf(int(progNameLen), ir.I8), ir.I64)
	k.ProgTable = k.global("prog_table", ir.ArrayOf(16, progT), nil, SubCore)

	// Forward-declare functions that earlier subsystems call into.
	sched := k.M.NewFunc("schedule", ir.FuncOf(ir.Void, nil, false))
	sched.Subsystem = SubArchDep
}

// --- small builder helpers -------------------------------------------------

// fn starts a kernel function with a subsystem tag.
func (k *K) fn(name, subsystem string, ret *ir.Type, params []*ir.Type, names ...string) *ir.Function {
	f := k.B.NewFunc(name, ir.FuncOf(ret, params, false), names...)
	f.Subsystem = subsystem
	return f
}

// op calls an SVA operation, bumping the SVA-OS porting counter.
func (k *K) op(name string, args ...ir.Value) *ir.Instr {
	k.Ledger.SVAOS[k.B.Fn.Subsystem]++
	return k.B.Call(svaops.Get(k.M, name), args...)
}

// Cur returns the address of the calling CPU's current_task slot.  Per-CPU
// data is reached through sva.cpu.id — the SMP port's substitute for the
// %gs-relative current of a native kernel.  The id is masked with
// MaxCPUs-1 (a no-op: the VM guarantees id < MaxCPUs) so the safe
// config's static array-bounds analysis can prove the index in bounds
// instead of charging a run-time check to every syscall.
func (k *K) Cur() ir.Value { return k.B.Index(k.Current, k.cpuSlot()) }

// Sched returns the address of the calling CPU's sched_target slot.
func (k *K) Sched() ir.Value { return k.B.Index(k.SchedTgt, k.cpuSlot()) }

// cpuSlot emits the masked per-CPU array index.
func (k *K) cpuSlot() ir.Value {
	return k.B.And(k.op(svaops.CPUID), c64(MaxCPUs-1))
}

// c64/c32 shorthand constants.
func c64(v int64) *ir.ConstInt { return ir.I64c(v) }
func c32(v int64) *ir.ConstInt { return ir.I32c(v) }

// errno returns the negative errno constant.
func errno(e int64) *ir.ConstInt { return ir.I64c(-e) }

// global declares a kernel global tagged for the current ledger section.
func (k *K) global(name string, t *ir.Type, init ir.Constant, subsystem string) *ir.Global {
	g := k.M.NewGlobal(name, t, init)
	g.Subsystem = subsystem
	return g
}

// countLOC tallies instruction counts per subsystem after the build (the
// stand-in for source LOC in the Table 4 report).
func (img *Image) CountLOC() {
	for _, f := range img.Kernel.Funcs {
		if f.IsDecl() {
			continue
		}
		n := 0
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
		img.Ledger.LOC[f.Subsystem] += n
	}
}
