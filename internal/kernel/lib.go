package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// buildLib emits the kernel utility library ("lib" in Table 4): the
// user-space copy routines and string helpers.  In the paper's as-tested
// kernel this library was NOT processed by the safety-checking compiler —
// which is exactly why the ELF core-dump exploit (BID 13589) slipped
// through: its unchecked negative length flowed into __copy_from_user,
// whose body carried no checks.  Compiling the library (the "entire
// kernel" configuration) catches it.
func (k *K) buildLib() {
	b := k.B
	bp := k.BP

	// user_addr_ok(addr): is this a mapped user address?  The miniature
	// address space maps [UserBase, UserTop) except the guard page below
	// each stack; a high-water-mark global stands in for the page tables.
	userTop := k.global("user_mapped_top", ir.I64, c64(UserStackTop), SubLib)
	k.fn("user_addr_ok", SubLib, ir.I64, []*ir.Type{ir.I64}, "addr")
	lo := b.ICmp(ir.PredUGE, b.Param(0), c64(0x1000_0000))
	hi := b.ICmp(ir.PredULT, b.Param(0), b.Load(userTop))
	b.Ret(b.ZExt(b.And(lo, hi), ir.I64))

	// __copy_from_user(dst, src_addr, n) -> bytes NOT copied.
	// Copies chunkwise; a fault (unmapped source page) stops the copy
	// mid-way with the destination already partially written — faithfully
	// reproducing the kernel behaviour the ELF exploit depends on.
	k.fn("__copy_from_user", SubLib, ir.I64, []*ir.Type{bp, ir.I64, ir.I64}, "dst", "src", "n")
	off := b.Alloca(ir.I64, "off")
	b.Store(c64(0), off)
	b.While(func() ir.Value {
		return b.ICmp(ir.PredULT, b.Load(off), b.Param(2))
	}, func() {
		srcA := b.Add(b.Param(1), b.Load(off))
		ok := b.Call(k.M.Func("user_addr_ok"), srcA)
		bad := b.ICmp(ir.PredEQ, ok, c64(0))
		b.If(bad, func() {
			b.Ret(b.Sub(b.Param(2), b.Load(off))) // EFAULT: bytes left
		})
		// Chunk = min(256, n-off, bytes to end of source page).
		left := b.Sub(b.Param(2), b.Load(off))
		chunk := b.Select(b.ICmp(ir.PredULT, left, c64(256)), left, c64(256))
		dstP := b.GEP(b.Param(0), b.Load(off))
		b.Call(svaops.Get(k.M, svaops.Memcpy), dstP, b.IntToPtr(srcA, bp), chunk)
		b.Store(b.Add(b.Load(off), chunk), off)
	})
	b.Ret(c64(0))

	// __copy_to_user(dst_addr, src, n) -> bytes NOT copied.
	k.fn("__copy_to_user", SubLib, ir.I64, []*ir.Type{ir.I64, bp, ir.I64}, "dst", "src", "n")
	off2 := b.Alloca(ir.I64, "off")
	b.Store(c64(0), off2)
	b.While(func() ir.Value {
		return b.ICmp(ir.PredULT, b.Load(off2), b.Param(2))
	}, func() {
		dstA := b.Add(b.Param(0), b.Load(off2))
		ok := b.Call(k.M.Func("user_addr_ok"), dstA)
		bad := b.ICmp(ir.PredEQ, ok, c64(0))
		b.If(bad, func() {
			b.Ret(b.Sub(b.Param(2), b.Load(off2)))
		})
		left := b.Sub(b.Param(2), b.Load(off2))
		chunk := b.Select(b.ICmp(ir.PredULT, left, c64(256)), left, c64(256))
		srcP := b.GEP(b.Param(1), b.Load(off2))
		b.Call(svaops.Get(k.M, svaops.Memcpy), b.IntToPtr(dstA, bp), srcP, chunk)
		b.Store(b.Add(b.Load(off2), chunk), off2)
	})
	b.Ret(c64(0))

	// strncpy_from_user(dst, src_addr, max) -> length or -EFAULT.
	k.fn("strncpy_from_user", SubLib, ir.I64, []*ir.Type{bp, ir.I64, ir.I64}, "dst", "src", "max")
	i := b.Alloca(ir.I64, "i")
	b.Store(c64(0), i)
	b.While(func() ir.Value {
		return b.ICmp(ir.PredULT, b.Load(i), b.Param(2))
	}, func() {
		srcA := b.Add(b.Param(1), b.Load(i))
		ok := b.Call(k.M.Func("user_addr_ok"), srcA)
		bad := b.ICmp(ir.PredEQ, ok, c64(0))
		b.If(bad, func() { b.Ret(errno(EFAULT)) })
		ch := b.Load(b.IntToPtr(srcA, ir.PointerTo(ir.I8)))
		b.Store(ch, b.GEP(b.Param(0), b.Load(i)))
		done := b.ICmp(ir.PredEQ, ch, ir.I8c(0))
		b.If(done, func() { b.Ret(b.Load(i)) })
		b.Store(b.Add(b.Load(i), c64(1)), i)
	})
	// Unterminated: force NUL in the last byte.
	last := b.Sub(b.Param(2), c64(1))
	b.Store(ir.I8c(0), b.GEP(b.Param(0), last))
	b.Ret(last)

	// strlen_k(p) and streq_k(a, b): kernel-internal string helpers.
	k.fn("strlen_k", SubLib, ir.I64, []*ir.Type{bp}, "p")
	n := b.Alloca(ir.I64, "n")
	b.Store(c64(0), n)
	b.While(func() ir.Value {
		ch := b.Load(b.GEP(b.Param(0), b.Load(n)))
		return b.ICmp(ir.PredNE, ch, ir.I8c(0))
	}, func() {
		b.Store(b.Add(b.Load(n), c64(1)), n)
	})
	b.Ret(b.Load(n))

	k.fn("streq_k", SubLib, ir.I64, []*ir.Type{bp, bp}, "a", "b")
	j := b.Alloca(ir.I64, "j")
	b.Store(c64(0), j)
	b.Loop(func() {
		ca := b.Load(b.GEP(b.Param(0), b.Load(j)))
		cb := b.Load(b.GEP(b.Param(1), b.Load(j)))
		diff := b.ICmp(ir.PredNE, ca, cb)
		b.If(diff, func() { b.Ret(c64(0)) })
		end := b.ICmp(ir.PredEQ, ca, ir.I8c(0))
		b.If(end, func() { b.Ret(c64(1)) })
		b.Store(b.Add(b.Load(j), c64(1)), j)
	})
	b.Seal()

	// memzero_k(p, n): zero kernel memory.
	k.fn("memzero_k", SubLib, ir.Void, []*ir.Type{bp, ir.I64}, "p", "n")
	b.Call(svaops.Get(k.M, svaops.Memset), b.Param(0), c64(0), b.Param(1))
	b.Ret(nil)
}
