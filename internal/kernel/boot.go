package kernel

import (
	"fmt"
	"sync"

	"sva/internal/hw"
	"sva/internal/ir"
	"sva/internal/pointer"
	"sva/internal/safety"
	"sva/internal/svaos"
	"sva/internal/vm"
)

// SafetyConfig returns the safety-compiler configuration for this kernel:
// the §4.4 allocator declarations (allocation/deallocation routines, size
// functions, pool vs ordinary classification), the user-copy routines, and
// — when asTested is true — the subsystem exclusions of §7.1 (mm, lib and
// the character drivers).
func SafetyConfig(asTested bool) safety.Config {
	cfg := safety.Config{
		Pointer: pointer.Config{
			TrackIntToPtrNull: true,
			Allocators: []pointer.AllocatorInfo{
				{Name: "kmalloc", Kind: pointer.OrdinaryAllocator, SizeArg: 0,
					FreeName: "kfree", FreePtrArg: 0, SizeClasses: true},
				{Name: "kmem_cache_alloc", Kind: pointer.PoolAllocator, SizeArg: -1,
					PoolArg: 0, FreeName: "kmem_cache_free", FreePtrArg: 1},
				// vmalloc and the boot allocator are not brought under the
				// registration scheme — the paper §6.2 likewise was "still
				// working on" vmalloc; their partitions stay incomplete and
				// receive reduced checks.
			},
			UserCopyFuncs: []string{"__copy_from_user", "__copy_to_user", "strncpy_from_user"},
		},
		EntryFunc: "kernel_entry",
		SizeFuncs: map[string]string{
			"kmem_cache_alloc": "kmem_cache_size",
		},
		PromoteAlloc: "kmalloc",
		PromoteFree:  "kfree",
	}
	if asTested {
		cfg.Pointer.ExcludeSubsystems = []string{SubMM, SubLib, SubCharDrv}
	} else {
		// "Compiling an additional kernel library": the copy library joins
		// the safety-compiled set.  The memory subsystem and character
		// drivers stay excluded — like the paper's kernel, a build that
		// instruments the allocator internals does not boot (its free-list
		// manipulation is exactly the metadata the checks must not see).
		cfg.Pointer.ExcludeSubsystems = []string{SubMM, SubCharDrv}
	}
	return cfg
}

// System is a booted guest: machine, VM and kernel image.
type System struct {
	VM   *vm.VM
	Img  *Image
	Prog *safety.Program // nil unless safety-compiled
	// Extra holds the user modules loaded alongside the kernel.
	Extra []*ir.Module
	boots uint64
	// vcpus holds every virtual CPU once RunSMP has enabled SMP
	// (nil on a uniprocessor system).
	vcpus []*vm.VM
}

// NewSystem builds the kernel, optionally safety-compiles it (ConfigSafe),
// loads it and boots it.  asTested=true excludes mm/lib/char-drivers from
// safety compilation (§7.1); asTested=false additionally compiles the copy
// library (the §7.2 "additional kernel library").  extra modules (user
// programs) are loaded into user space before boot.
func NewSystem(cfg vm.Config, asTested bool, extra ...*ir.Module) (*System, error) {
	return NewSystemWith(cfg, SafetyConfig(asTested), extra...)
}

// NewSystemWith is NewSystem with an explicit safety-compilation config
// (elision ablations, exploit equivalence runs).  scfg is ignored unless
// cfg is ConfigSafe.
func NewSystemWith(cfg vm.Config, scfg safety.Config, extra ...*ir.Module) (*System, error) {
	img := Build()
	var prog *safety.Program
	if cfg == vm.ConfigSafe {
		mods := append([]*ir.Module{img.Kernel}, extra...)
		p, err := safety.Compile(scfg, mods...)
		if err != nil {
			return nil, fmt.Errorf("kernel: safety compile: %w", err)
		}
		prog = p
	}
	if errs := ir.VerifyModule(img.Kernel); len(errs) != 0 {
		return nil, fmt.Errorf("kernel: module does not verify: %v", errs[0])
	}
	mach := hw.NewMachine(0, 256)
	v := vm.New(mach, cfg)
	svaos.Install(v)
	if prog != nil {
		prog.Attach(v.Telemetry)
	}
	if err := v.LoadModule(img.Kernel, false); err != nil {
		return nil, err
	}
	for _, m := range extra {
		if err := v.LoadModule(m, true); err != nil {
			return nil, err
		}
	}
	sys := &System{VM: v, Img: img, Prog: prog, Extra: extra}
	if err := sys.Boot(); err != nil {
		return nil, err
	}
	return sys, nil
}

// SharedImage is a pristine kernel image prepared once and booted by
// many domains: the built (and, for ConfigSafe, safety-compiled) module
// set with every function renumbered up front, plus the cross-domain
// translation cache.  The image and cache are read-only from the
// domains' perspective — a microrebooting domain re-links the same
// modules via LoadModuleShared, which never renumbers, so sibling
// domains can keep executing the shared IR throughout.
type SharedImage struct {
	Img   *Image
	Prog  *safety.Program // nil unless ConfigSafe
	Cfg   vm.Config
	Extra []*ir.Module
	Cache *vm.SharedCache
}

// BuildShared builds and prepares a kernel image for multi-domain use.
func BuildShared(cfg vm.Config, asTested bool, extra ...*ir.Module) (*SharedImage, error) {
	return BuildSharedWith(cfg, SafetyConfig(asTested), extra...)
}

// BuildSharedWith is BuildShared with an explicit safety config.
func BuildSharedWith(cfg vm.Config, scfg safety.Config, extra ...*ir.Module) (*SharedImage, error) {
	img := Build()
	var prog *safety.Program
	if cfg == vm.ConfigSafe {
		mods := append([]*ir.Module{img.Kernel}, extra...)
		p, err := safety.Compile(scfg, mods...)
		if err != nil {
			return nil, fmt.Errorf("kernel: safety compile: %w", err)
		}
		prog = p
	}
	if errs := ir.VerifyModule(img.Kernel); len(errs) != 0 {
		return nil, fmt.Errorf("kernel: module does not verify: %v", errs[0])
	}
	// Renumber every function of every module exactly once, before any
	// domain boots.  Domain (re)boots use LoadModuleShared, which skips
	// renumbering — Renumber writes per-instruction state, and a
	// microreboot must not race siblings executing the shared IR.
	for _, m := range append([]*ir.Module{img.Kernel}, extra...) {
		for _, f := range m.Funcs {
			f.Renumber()
		}
	}
	return &SharedImage{Img: img, Prog: prog, Cfg: cfg, Extra: extra, Cache: vm.NewSharedCache()}, nil
}

// NewSystemShared boots one domain from a shared image: a private
// machine, VM, metapool registry and device set over the shared
// read-only modules and translation cache.  Safe to call concurrently
// with sibling domains executing (microreboot).
func NewSystemShared(si *SharedImage) (*System, error) {
	mach := hw.NewMachine(0, 256)
	v := vm.NewWithCache(mach, si.Cfg, si.Cache)
	svaos.Install(v)
	if si.Prog != nil {
		si.Prog.Attach(v.Telemetry)
	}
	if err := v.LoadModuleShared(si.Img.Kernel, false); err != nil {
		return nil, err
	}
	for _, m := range si.Extra {
		if err := v.LoadModuleShared(m, true); err != nil {
			return nil, err
		}
	}
	// Sharing compiled closures is only sound when every domain resolved
	// the same addresses; refuse to boot a divergent layout.
	if err := si.Cache.AdoptLayout(v.LayoutFingerprint()); err != nil {
		return nil, err
	}
	sys := &System{VM: v, Img: si.Img, Prog: si.Prog, Extra: si.Extra}
	if err := sys.Boot(); err != nil {
		return nil, err
	}
	return sys, nil
}

// Boot runs kernel_entry on a fresh kernel stack.
func (s *System) Boot() error {
	entry := s.VM.FuncByName(s.Img.Entry)
	if entry == nil {
		return fmt.Errorf("kernel: no entry function")
	}
	top, err := s.VM.AllocKernelStack(KStackSize)
	if err != nil {
		return err
	}
	ex, err := s.VM.NewExec(entry, []uint64{top}, top, hw.PrivKernel)
	if err != nil {
		return err
	}
	s.VM.SetExec(ex)
	s.VM.StepBudget = s.VM.Counters.Steps + 50_000_000
	if _, err := s.VM.Run(); err != nil {
		return fmt.Errorf("kernel: boot: %w", err)
	}
	s.boots++
	return nil
}

// RegisterProgram installs a user program in the kernel's exec table (the
// boot loader writing the "filesystem").
func (s *System) RegisterProgram(name string, fn *ir.Function) error {
	addr := s.VM.FuncAddr(fn)
	if addr == 0 {
		return fmt.Errorf("kernel: program %s not loaded", name)
	}
	base, ok := s.VM.GlobalAddrByName("prog_table")
	if !ok {
		return fmt.Errorf("kernel: no prog_table")
	}
	const entSize = 32 // [24]i8 name + i64 addr
	for i := 0; i < 16; i++ {
		ent := base + uint64(i*entSize)
		cur, err := s.VM.Mach.Phys.Load(ent+24, 8)
		if err != nil {
			return err
		}
		if cur != 0 {
			continue
		}
		nb := make([]byte, 24)
		copy(nb, name)
		if err := s.VM.MemWriteBytes(ent, nb); err != nil {
			return err
		}
		return s.VM.Mach.Phys.Store(ent+24, addr, 8)
	}
	return fmt.Errorf("kernel: prog_table full")
}

// SpawnUser creates an execution state running fn(arg) in user mode on a
// fresh user stack, with traps landing on the boot task's kernel stack.
// It returns after installing the state; call s.VM.Run() to execute.
// The boot task (pid 1) becomes the current task again, so consecutive
// spawns behave like successive programs run by init.
func (s *System) SpawnUser(fn *ir.Function, arg uint64) error {
	kstackTop, err := s.taskKStack(1)
	if err != nil {
		return err
	}
	t0, err := s.TaskPtr(1)
	if err != nil {
		return err
	}
	var layout ir.Layout
	taskT := ir.NamedStruct("task_t")
	stateOff := uint64(layout.FieldOffset(taskT, 1))
	if err := s.VM.Mach.Phys.Store(t0+stateOff, TaskRunnable, 8); err != nil {
		return err
	}
	// Fresh program image: the boot task's heap break rewinds to its
	// arena base (the arena itself is reused across spawns).
	brkBaseOff := uint64(layout.FieldOffset(taskT, 9))
	brkCurOff := uint64(layout.FieldOffset(taskT, 10))
	base, err := s.VM.Mach.Phys.Load(t0+brkBaseOff, 8)
	if err != nil {
		return err
	}
	if base != 0 {
		if err := s.VM.Mach.Phys.Store(t0+brkCurOff, base, 8); err != nil {
			return err
		}
	}
	for _, g := range []string{"current_task", "sched_target"} {
		addr, ok := s.VM.GlobalAddrByName(g)
		if !ok {
			return fmt.Errorf("kernel: no global %s", g)
		}
		if err := s.VM.Mach.Phys.Store(addr, t0, 8); err != nil {
			return err
		}
	}
	ex, err := s.VM.NewExec(fn, userArgs(fn, arg), UserStackTop-16, hw.PrivUser)
	if err != nil {
		return err
	}
	ex.SetKStackTop(kstackTop)
	s.VM.SetExec(ex)
	return nil
}

// RunUser spawns fn(arg) and runs it to completion, returning its value.
func (s *System) RunUser(fn *ir.Function, arg uint64, budget uint64) (uint64, error) {
	if err := s.SpawnUser(fn, arg); err != nil {
		return 0, err
	}
	if budget == 0 {
		budget = 500_000_000
	}
	s.VM.StepBudget = s.VM.Counters.Steps + budget
	return s.VM.Run()
}

func userArgs(fn *ir.Function, arg uint64) []uint64 {
	args := make([]uint64, len(fn.Params))
	if len(args) > 0 {
		args[0] = arg
	}
	return args
}

// taskKStack reads pid's kernel-stack top out of the guest task struct.
func (s *System) taskKStack(pid int) (uint64, error) {
	t, err := s.TaskPtr(pid)
	if err != nil {
		return 0, err
	}
	var layout ir.Layout
	off := layout.FieldOffset(ir.NamedStruct("task_t"), 3)
	return s.VM.Mach.Phys.Load(t+uint64(off), 8)
}

// TaskPtr returns the guest address of pid's task struct.
func (s *System) TaskPtr(pid int) (uint64, error) {
	base, ok := s.VM.GlobalAddrByName("pid_table")
	if !ok {
		return 0, fmt.Errorf("kernel: no pid_table")
	}
	t, err := s.VM.Mach.Phys.Load(base+uint64(pid)*8, 8)
	if err != nil {
		return 0, err
	}
	if t == 0 {
		return 0, fmt.Errorf("kernel: pid %d has no task", pid)
	}
	return t, nil
}

// callKernel runs a kernel function serially on the boot CPU — host glue
// playing the boot loader (smp_spawn, smp_finish).  Must not be called
// while virtual CPUs are running.
func (s *System) callKernel(name string, args ...uint64) (uint64, error) {
	f := s.VM.FuncByName(name)
	if f == nil {
		return 0, fmt.Errorf("kernel: no function %s", name)
	}
	top, err := s.taskKStack(1)
	if err != nil {
		return 0, err
	}
	ex, err := s.VM.NewExec(f, args, top, hw.PrivKernel)
	if err != nil {
		return 0, err
	}
	s.VM.SetExec(ex)
	s.VM.StepBudget = s.VM.Counters.Steps + 10_000_000
	return s.VM.Run()
}

// SpawnSMP fabricates a user task running fn(arg), parked in the
// TaskSMPReady state until RunSMP dispatches it to a virtual CPU.  Spawning
// is serialized on the boot CPU: the stack free lists it manipulates are
// guest globals with no cross-CPU discipline.
func (s *System) SpawnSMP(fn *ir.Function, arg uint64) (uint64, error) {
	addr := s.VM.FuncAddr(fn)
	if addr == 0 {
		return 0, fmt.Errorf("kernel: program %s not loaded", fn.Name())
	}
	pid, err := s.callKernel("smp_spawn", addr, arg)
	if err != nil {
		return 0, err
	}
	if int64(pid) < 0 {
		return 0, fmt.Errorf("kernel: smp_spawn: errno %d", -int64(pid))
	}
	return pid, nil
}

// HostPanicError wraps a panic that escaped a virtual CPU's interpreter
// during RunSMP.  Panics cannot cross goroutines, so the dispatch loop
// absorbs them into this error; the fault campaign classifies it as a host
// escape.
type HostPanicError struct {
	CPU int
	Val any
}

func (e *HostPanicError) Error() string {
	return fmt.Sprintf("host panic on vcpu %d: %v", e.CPU, e.Val)
}

// SMPRun is one virtual CPU's outcome from RunSMP.
type SMPRun struct {
	CPU      int
	Pids     []uint64 // tasks this CPU claimed and ran, in order
	Rets     []uint64 // their user-function return values
	Err      error    // first failure (ends this CPU's dispatch loop)
	Cycles   uint64   // virtual cycles this CPU consumed during the run
	Syscalls uint64   // traps dispatched on this CPU during the run
}

// RunSMP dispatches every parked SMP task across ncpu virtual CPUs and
// waits for all of them.  Each CPU's host goroutine loops: activate
// smp_take, which CAS-claims one task from its static partition (pid mod
// ncpu) and load.integers into it; the task's user function returning ends
// the activation, and the loop re-enters smp_take until the partition
// drains.  Completed tasks are reaped serially afterwards.  budget is the
// per-activation step budget (0 = default).  The first call fixes the
// machine's CPU count; later calls must pass the same ncpu.
func (s *System) RunSMP(ncpu int, budget uint64) ([]SMPRun, error) {
	if ncpu < 1 || ncpu > MaxCPUs {
		return nil, fmt.Errorf("kernel: RunSMP with %d CPUs (max %d)", ncpu, MaxCPUs)
	}
	if s.vcpus == nil {
		vcpus, err := s.VM.EnableSMP(ncpu)
		if err != nil {
			return nil, err
		}
		s.vcpus = vcpus
	}
	if len(s.vcpus) != ncpu {
		return nil, fmt.Errorf("kernel: machine has %d CPUs, RunSMP asked for %d", len(s.vcpus), ncpu)
	}
	takeFn := s.VM.FuncByName("smp_take")
	if takeFn == nil {
		return nil, fmt.Errorf("kernel: no smp_take")
	}
	claimedBase, ok := s.VM.GlobalAddrByName("smp_claimed")
	if !ok {
		return nil, fmt.Errorf("kernel: no smp_claimed")
	}
	if budget == 0 {
		budget = 500_000_000
	}
	// Dispatch-loop kernel stacks, allocated serially up front (the stack
	// cursor lives on the boot VM and is not meant for concurrent use).
	tops := make([]uint64, ncpu)
	for i := range tops {
		t, err := s.VM.AllocKernelStack(KStackSize)
		if err != nil {
			return nil, err
		}
		tops[i] = t
	}
	runs := make([]SMPRun, ncpu)
	var wg sync.WaitGroup
	for i := 0; i < ncpu; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := s.vcpus[i]
			r := &runs[i]
			r.CPU = i
			startCyc, startTraps := v.CPU.Cycles, v.Counters.Traps
			for {
				ex, err := v.NewExec(takeFn, []uint64{uint64(i), uint64(ncpu)}, tops[i], hw.PrivKernel)
				if err != nil {
					r.Err = err
					break
				}
				v.SetExec(ex)
				v.StepBudget = v.Counters.Steps + budget
				ret, err := func() (ret uint64, err error) {
					defer func() {
						if rec := recover(); rec != nil {
							err = &HostPanicError{CPU: i, Val: rec}
						}
					}()
					return v.Run()
				}()
				if err != nil {
					r.Err = err
					break
				}
				claimed, err := s.VM.Mach.Phys.Load(claimedBase+uint64(i)*8, 8)
				if err != nil {
					r.Err = err
					break
				}
				if claimed == 0 {
					break // partition drained: smp_take found nothing
				}
				r.Pids = append(r.Pids, claimed)
				r.Rets = append(r.Rets, ret)
			}
			r.Cycles = v.CPU.Cycles - startCyc
			r.Syscalls = v.Counters.Traps - startTraps
		}(i)
	}
	wg.Wait()
	// Reap on the boot CPU, strictly after every dispatcher has joined.
	for _, r := range runs {
		for _, pid := range r.Pids {
			if _, err := s.callKernel("smp_finish", pid); err != nil {
				return runs, err
			}
		}
	}
	return runs, nil
}

// PeekGlobal reads an i64 kernel global (tests and the exploit harness).
func (s *System) PeekGlobal(name string, off uint64) (uint64, error) {
	base, ok := s.VM.GlobalAddrByName(name)
	if !ok {
		return 0, fmt.Errorf("kernel: no global %s", name)
	}
	return s.VM.Mach.Phys.Load(base+off, 8)
}

// ConsoleOutput returns everything the guest printed.
func (s *System) ConsoleOutput() string { return s.VM.Mach.Console.Output() }

// Compile runs the safety-checking compiler over a kernel image in the
// as-tested configuration (mm/lib/character drivers excluded).
func Compile(img *Image) (*safety.Program, error) {
	return safety.Compile(SafetyConfig(true), img.Kernel)
}
