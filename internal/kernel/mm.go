package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// buildMM emits the memory subsystem: the early boot allocator, the page
// allocator, the kmem_cache slab allocator (with the SLAB_NO_REAP
// discipline §6.2 requires), kmalloc over size-class caches, and vmalloc.
// All of it is ordinary guest code operating on guest memory — the safety
// compiler excludes this subsystem in the as-tested configuration, exactly
// like the paper's kernel.
func (k *K) buildMM() {
	b := k.B
	bp := k.BP

	bootCursor := k.global("bootmem_cursor", ir.I64, c64(BootmemBase), SubMM)
	pageFree := k.global("page_free_head", ir.I64, c64(0), SubMM)
	pageCursor := k.global("page_cursor", ir.I64, c64(PageBase), SubMM)
	vmCursor := k.global("vmalloc_cursor", ir.I64, c64(0xB000_0000), SubMM)

	// Static cache table (created caches live here; no dynamic count of
	// caches is needed for a miniature kernel).
	caches := k.global("kmem_caches", ir.ArrayOf(32, k.CacheT), nil, SubMM)
	cacheCount := k.global("kmem_cache_count", ir.I64, c64(0), SubMM)
	kmallocCaches := k.global("kmalloc_caches", ir.ArrayOf(8, ir.PointerTo(k.CacheT)), nil, SubMM)

	// _alloc_bootmem(size): early bump allocation (never freed).
	k.fn("_alloc_bootmem", SubMM, bp, []*ir.Type{ir.I64}, "size")
	cur := b.Load(bootCursor)
	sz := b.And(b.Add(b.Param(0), c64(15)), c64(^int64(15)))
	b.Store(b.Add(cur, sz), bootCursor)
	b.Ret(b.IntToPtr(cur, bp))

	// alloc_page() -> page address (0 on exhaustion).
	k.fn("alloc_page", SubMM, ir.I64, nil)
	head := b.Load(pageFree)
	hasFree := b.ICmp(ir.PredNE, head, c64(0))
	b.IfElse(hasFree, func() {
		next := b.Load(b.IntToPtr(head, ir.PointerTo(ir.I64)))
		b.Store(next, pageFree)
		b.Ret(head)
	}, func() {
		pc := b.Load(pageCursor)
		full := b.ICmp(ir.PredUGE, pc, c64(PageTop))
		b.If(full, func() { b.Ret(c64(0)) })
		b.Store(b.Add(pc, c64(PageSize)), pageCursor)
		b.Ret(pc)
	})
	b.Seal()

	// free_page(addr): push on the free list.  Pages are reused only
	// through this list — never handed to a different allocator — which is
	// the no-cross-pool-release rule of §4.4 at page granularity.
	k.fn("free_page", SubMM, ir.Void, []*ir.Type{ir.I64}, "addr")
	b.Store(b.Load(pageFree), b.IntToPtr(b.Param(0), ir.PointerTo(ir.I64)))
	b.Store(b.Param(0), pageFree)
	b.Ret(nil)

	// kmem_cache_create(objsize) -> cache*.
	// Porting note (§6.2): every cache is marked SLAB_NO_REAP so the buddy
	// allocator never reclaims pool pages while the metapool lives.
	k.fn("kmem_cache_create", SubMM, ir.PointerTo(k.CacheT), []*ir.Type{ir.I64}, "objsize")
	k.Ledger.Alloc[SubMM] += 2 // NO_REAP flag + alignment discipline
	idx := b.Load(cacheCount)
	b.Store(b.Add(idx, c64(1)), cacheCount)
	cp := b.Index(caches, idx)
	aligned := b.And(b.Add(b.Param(0), c64(15)), c64(^int64(15)))
	b.Store(aligned, b.FieldAddr(cp, 0))
	b.Store(c64(0), b.FieldAddr(cp, 1))
	b.Store(c64(1), b.FieldAddr(cp, 2)) // SLAB_NO_REAP
	b.Store(b.UDiv(c64(PageSize), aligned), b.FieldAddr(cp, 3))
	b.Store(c64(0), b.FieldAddr(cp, 4))
	b.Ret(cp)

	// kmem_cache_grow(cache): carve one fresh page into objects.
	k.fn("kmem_cache_grow", SubMM, ir.I64, []*ir.Type{ir.PointerTo(k.CacheT)}, "cache")
	page := b.Call(k.M.Func("alloc_page"))
	fail := b.ICmp(ir.PredEQ, page, c64(0))
	b.If(fail, func() { b.Ret(c64(0)) })
	objsize := b.Load(b.FieldAddr(b.Param(0), 0))
	// Objects are laid at objsize multiples: the §4.4 alignment rule, so a
	// dangling pointer can never straddle two objects of the pool.  Carving
	// from the top down makes the LIFO free list hand out ascending
	// addresses, like a fresh Linux slab.
	off := b.Alloca(ir.I64, "off")
	b.Store(b.Mul(b.UDiv(c64(PageSize), objsize), objsize), off)
	b.While(func() ir.Value {
		return b.ICmp(ir.PredUGE, b.Load(off), objsize)
	}, func() {
		b.Store(b.Sub(b.Load(off), objsize), off)
		obj := b.Add(page, b.Load(off))
		b.Store(b.Load(b.FieldAddr(b.Param(0), 1)), b.IntToPtr(obj, ir.PointerTo(ir.I64)))
		b.Store(obj, b.FieldAddr(b.Param(0), 1))
	})
	b.Ret(c64(1))

	// kmem_cache_alloc(cache) -> i8*.
	k.fn("kmem_cache_alloc", SubMM, bp, []*ir.Type{ir.PointerTo(k.CacheT)}, "cache")
	fh := b.Load(b.FieldAddr(b.Param(0), 1))
	empty := b.ICmp(ir.PredEQ, fh, c64(0))
	b.If(empty, func() {
		grown := b.Call(k.M.Func("kmem_cache_grow"), b.Param(0))
		bad := b.ICmp(ir.PredEQ, grown, c64(0))
		b.If(bad, func() { b.Ret(ir.Null(bp)) })
	})
	fh2 := b.Load(b.FieldAddr(b.Param(0), 1))
	next := b.Load(b.IntToPtr(fh2, ir.PointerTo(ir.I64)))
	b.Store(next, b.FieldAddr(b.Param(0), 1))
	b.Store(b.Add(b.Load(b.FieldAddr(b.Param(0), 4)), c64(1)), b.FieldAddr(b.Param(0), 4))
	b.Ret(b.IntToPtr(fh2, bp))

	// kmem_cache_free(cache, p): objects return only to their own cache —
	// memory never leaves the pool (§4.4).
	k.fn("kmem_cache_free", SubMM, ir.Void, []*ir.Type{ir.PointerTo(k.CacheT), bp}, "cache", "p")
	addr := b.PtrToInt(b.Param(1), ir.I64)
	b.Store(b.Load(b.FieldAddr(b.Param(0), 1)), b.IntToPtr(addr, ir.PointerTo(ir.I64)))
	b.Store(addr, b.FieldAddr(b.Param(0), 1))
	b.Ret(nil)

	// kmem_cache_size(cache): the §4.4 size function the safety compiler
	// calls to register pool allocations.
	k.fn("kmem_cache_size", SubMM, ir.I64, []*ir.Type{ir.PointerTo(k.CacheT)}, "cache")
	k.Ledger.Alloc[SubMM]++
	b.Ret(b.Load(b.FieldAddr(b.Param(0), 0)))

	// kmalloc_cache_index(size): size class selection (32..4096).
	k.fn("kmalloc_cache_index", SubMM, ir.I64, []*ir.Type{ir.I64}, "size")
	i := b.Alloca(ir.I64, "i")
	cls := b.Alloca(ir.I64, "cls")
	b.Store(c64(0), i)
	b.Store(c64(32), cls)
	b.While(func() ir.Value {
		return b.ICmp(ir.PredULT, b.Load(cls), b.Param(0))
	}, func() {
		b.Store(b.Mul(b.Load(cls), c64(2)), cls)
		b.Store(b.Add(b.Load(i), c64(1)), i)
	})
	b.Ret(b.Load(i))

	// vmalloc(size): page-granular allocation from a separate region.
	k.fn("vmalloc", SubMM, bp, []*ir.Type{ir.I64}, "size")
	pages := b.UDiv(b.Add(b.Param(0), c64(PageSize-1)), c64(PageSize))
	base := b.Load(vmCursor)
	b.Store(b.Add(base, b.Mul(pages, c64(PageSize))), vmCursor)
	b.Ret(b.IntToPtr(base, bp))

	k.fn("vfree", SubMM, ir.Void, []*ir.Type{bp}, "p")
	// Reclaim for vmalloc is future work in the port, as in §6.2 ("We are
	// still working on providing similar functionality for memory
	// allocated by vmalloc").
	b.Ret(nil)

	// vmalloc_size(size).
	k.fn("vmalloc_size", SubMM, ir.I64, []*ir.Type{ir.I64}, "size")
	b.Ret(b.Param(0))

	// kmalloc(size): implemented over the size-class caches.  The §6.2
	// exposure of this relationship is what lets the compiler merge only
	// per-size-class metapools instead of everything kmalloc touches.
	k.fn("kmalloc", SubMM, bp, []*ir.Type{ir.I64}, "size")
	k.Ledger.Alloc[SubMM]++
	tooBig := b.ICmp(ir.PredUGT, b.Param(0), c64(4096-16))
	b.If(tooBig, func() {
		b.Ret(b.Call(k.M.Func("vmalloc"), b.Param(0)))
	})
	ci := b.Call(k.M.Func("kmalloc_cache_index"), b.Add(b.Param(0), c64(16)))
	cpp := b.Index(kmallocCaches, ci)
	cache := b.Load(cpp)
	raw := b.Call(k.M.Func("kmem_cache_alloc"), cache)
	isNull := b.ICmp(ir.PredEQ, b.PtrToInt(raw, ir.I64), c64(0))
	b.If(isNull, func() { b.Ret(ir.Null(bp)) })
	// A 16-byte header stores the owning cache so kfree can find it.
	b.Store(b.PtrToInt(cache, ir.I64), b.Bitcast(raw, ir.PointerTo(ir.I64)))
	b.Ret(b.GEP(raw, c64(16)))

	// kfree(p).
	k.fn("kfree", SubMM, ir.Void, []*ir.Type{bp}, "p")
	isNull2 := b.ICmp(ir.PredEQ, b.PtrToInt(b.Param(0), ir.I64), c64(0))
	b.If(isNull2, func() { b.Ret(nil) })
	fromVmalloc := b.ICmp(ir.PredUGE, b.PtrToInt(b.Param(0), ir.I64), c64(0xB000_0000))
	b.If(fromVmalloc, func() {
		b.Call(k.M.Func("vfree"), b.Param(0))
		b.Ret(nil)
	})
	rawp := b.GEP(b.Param(0), c64(-16))
	cacheAddr := b.Load(b.Bitcast(rawp, ir.PointerTo(ir.I64)))
	b.Call(k.M.Func("kmem_cache_free"), b.IntToPtr(cacheAddr, ir.PointerTo(k.CacheT)), rawp)
	b.Ret(nil)

	// kmalloc_size(size): the ordinary allocator's size function (§4.4) —
	// the registered object is exactly the caller-requested span.
	k.fn("kmalloc_size", SubMM, ir.I64, []*ir.Type{ir.I64}, "size")
	k.Ledger.Alloc[SubMM]++
	b.Ret(b.Param(0))

	// mm_init(): create the kmalloc size-class caches.
	k.fn("mm_init", SubMM, ir.Void, nil)
	b.For("i", c64(0), c64(8), c64(1), func(i ir.Value) {
		sizev := b.Shl(c64(32), i)
		cachep := b.Call(k.M.Func("kmem_cache_create"), sizev)
		b.Store(cachep, b.Index(kmallocCaches, i))
	})
	b.Ret(nil)
	_ = svaops.BytePtr
}
