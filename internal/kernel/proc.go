package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// buildProc emits process management: the task cache, pid table, the
// save/load-integer scheduler (the paper's context-switch protocol), and
// the fork/exec/exit/wait/getpid/brk/rusage/time syscalls.
//
// fork keeps the single flat user address space (no per-process page
// tables) but gives the child a fresh user stack region for its new
// frames, so parent and child run concurrently — the honest substitution
// for copy-on-write address spaces (see DESIGN.md §8).  Writes through
// pointers created before the fork remain shared, as under no-MMU uClinux.
func (k *K) buildProc() {
	b := k.B
	bp := k.BP
	taskP := ir.PointerTo(k.TaskT)
	var layout ir.Layout

	taskCache := k.global("task_cache", ir.PointerTo(k.CacheT), nil, SubCore)
	userStackCur := k.global("user_stack_cursor", ir.I64, c64(UserStackTop-UserStackSize), SubCore)
	userStackFree := k.global("user_stack_free", ir.I64, c64(0), SubCore)
	kstackFree := k.global("kstack_free", ir.I64, c64(0), SubCore)
	userDynCur := k.global("user_dyn_cursor", ir.I64, c64(UserDynBase), SubCore)

	// user_stack_alloc() -> new stack top (stacks grow down, one guard gap;
	// reaped processes' stacks are recycled through a free list).
	k.fn("user_stack_alloc", SubCore, ir.I64, nil)
	head := b.Load(userStackFree)
	reuse := b.ICmp(ir.PredNE, head, c64(0))
	b.If(reuse, func() {
		next := b.Load(b.IntToPtr(b.Sub(head, c64(UserStackSize)), ir.PointerTo(ir.I64)))
		b.Store(next, userStackFree)
		b.Ret(head)
	})
	cur := b.Load(userStackCur)
	b.Store(b.Sub(cur, c64(UserStackSize+PageSize)), userStackCur)
	b.Ret(cur)

	// user_stack_free(top): recycle a stack region.
	k.fn("user_stack_free", SubCore, ir.Void, []*ir.Type{ir.I64}, "top")
	none0 := b.ICmp(ir.PredEQ, b.Param(0), c64(0))
	b.If(none0, func() { b.Ret(nil) })
	b.Store(b.Load(userStackFree), b.IntToPtr(b.Sub(b.Param(0), c64(UserStackSize)), ir.PointerTo(ir.I64)))
	b.Store(b.Param(0), userStackFree)
	b.Ret(nil)

	// kstack_alloc() -> kernel-stack top (recycled through a free list).
	k.fn("kstack_alloc", SubCore, ir.I64, nil)
	kh := b.Load(kstackFree)
	kreuse := b.ICmp(ir.PredNE, kh, c64(0))
	b.If(kreuse, func() {
		next := b.Load(b.IntToPtr(b.Sub(kh, c64(KStackSize)), ir.PointerTo(ir.I64)))
		b.Store(next, kstackFree)
		b.Ret(kh)
	})
	kstk0 := b.Call(k.M.Func("vmalloc"), c64(KStackSize))
	b.Ret(b.Add(b.PtrToInt(kstk0, ir.I64), c64(KStackSize)))

	// kstack_free(top).
	k.fn("kstack_free", SubCore, ir.Void, []*ir.Type{ir.I64}, "top")
	knone := b.ICmp(ir.PredEQ, b.Param(0), c64(0))
	b.If(knone, func() { b.Ret(nil) })
	b.Store(b.Load(kstackFree), b.IntToPtr(b.Sub(b.Param(0), c64(KStackSize)), ir.PointerTo(ir.I64)))
	b.Store(b.Param(0), kstackFree)
	b.Ret(nil)

	userArenaFree := k.global("user_arena_free_head", ir.I64, c64(0), SubCore)

	// user_arena_alloc(size) -> base of a user heap arena (fixed
	// UserBrkArena granularity, recycled through a free list).
	k.fn("user_arena_alloc", SubCore, ir.I64, []*ir.Type{ir.I64}, "size")
	ah := b.Load(userArenaFree)
	areuse := b.ICmp(ir.PredNE, ah, c64(0))
	b.If(areuse, func() {
		next := b.Load(b.IntToPtr(ah, ir.PointerTo(ir.I64)))
		b.Store(next, userArenaFree)
		b.Ret(ah)
	})
	cur2 := b.Load(userDynCur)
	b.Store(b.Add(cur2, c64(UserBrkArena)), userDynCur)
	b.Ret(cur2)

	// user_arena_free(base): recycle a heap arena.
	k.fn("user_arena_free", SubCore, ir.Void, []*ir.Type{ir.I64}, "base")
	anone := b.ICmp(ir.PredEQ, b.Param(0), c64(0))
	b.If(anone, func() { b.Ret(nil) })
	b.Store(b.Load(userArenaFree), b.IntToPtr(b.Param(0), ir.PointerTo(ir.I64)))
	b.Store(b.Param(0), userArenaFree)
	b.Ret(nil)

	// task_alloc() -> zeroed task with a recycled pid and kernel stack.
	k.fn("task_alloc", SubCore, taskP, nil)
	pidCell := b.Alloca(ir.I64, "pid")
	b.Store(c64(0), pidCell)
	start := b.Load(k.NextPid)
	b.For("i", c64(0), c64(NumPids-2), c64(1), func(i ir.Value) {
		cand := b.Add(c64(2), b.SRem(b.Add(b.Sub(start, c64(2)), i), c64(NumPids-2)))
		slot := b.Load(b.Index(k.PidTable, cand))
		free := b.ICmp(ir.PredEQ, b.PtrToInt(slot, ir.I64), c64(0))
		b.If(free, func() {
			b.Store(cand, pidCell)
			b.Store(b.Add(cand, c64(1)), k.NextPid)
			b.Break()
		})
	})
	noPid := b.ICmp(ir.PredEQ, b.Load(pidCell), c64(0))
	b.If(noPid, func() { b.Ret(ir.Null(taskP)) })
	raw := b.Call(k.M.Func("kmem_cache_alloc"), b.Load(taskCache))
	isNull := b.ICmp(ir.PredEQ, b.PtrToInt(raw, ir.I64), c64(0))
	b.If(isNull, func() { b.Ret(ir.Null(taskP)) })
	b.Call(k.M.Func("memzero_k"), raw, c64(layout.Size(k.TaskT)))
	t := b.Bitcast(raw, taskP)
	pid := b.Load(pidCell)
	b.Store(pid, b.FieldAddr(t, 0))
	b.Store(b.Call(k.M.Func("kstack_alloc")), b.FieldAddr(t, 3))
	b.Store(t, b.Index(k.PidTable, pid))
	b.Ret(t)

	// find_task(pid) -> task* or null.
	k.fn("find_task", SubCore, taskP, []*ir.Type{ir.I64}, "pid")
	bad := b.Or(b.ZExt(b.ICmp(ir.PredSLT, b.Param(0), c64(0)), ir.I64),
		b.ZExt(b.ICmp(ir.PredSGE, b.Param(0), c64(NumPids)), ir.I64))
	isBad := b.ICmp(ir.PredNE, bad, c64(0))
	b.If(isBad, func() { b.Ret(ir.Null(taskP)) })
	b.Ret(b.Load(b.Index(k.PidTable, b.Param(0))))

	// wake_task(t): make a task runnable.
	k.fn("wake_task", SubCore, ir.Void, []*ir.Type{taskP}, "t")
	isNull2 := b.ICmp(ir.PredEQ, b.PtrToInt(b.Param(0), ir.I64), c64(0))
	b.If(isNull2, func() { b.Ret(nil) })
	b.Store(c64(TaskRunnable), b.FieldAddr(b.Param(0), 1))
	b.Ret(nil)

	// pick_next() -> next runnable task (round robin from current pid),
	// or null when nothing is runnable.
	k.fn("pick_next", SubCore, taskP, nil)
	curT := b.Load(k.Cur())
	curPid := b.Load(b.FieldAddr(curT, 0))
	b.For("i", c64(1), c64(NumPids+1), c64(1), func(i ir.Value) {
		pid2 := b.Add(curPid, i)
		wrapped := b.SRem(pid2, c64(NumPids))
		cand := b.Load(b.Index(k.PidTable, wrapped))
		some := b.ICmp(ir.PredNE, b.PtrToInt(cand, ir.I64), c64(0))
		b.If(some, func() {
			run := b.ICmp(ir.PredEQ, b.Load(b.FieldAddr(cand, 1)), c64(TaskRunnable))
			b.If(run, func() { b.Ret(cand) })
		})
	})
	b.Ret(ir.Null(taskP))

	// schedule(): the §3.3 context-switch protocol over save/load.integer.
	// The sched_target handshake distinguishes snapshot-time fall-through
	// from resume-time return (both continue at the instruction after the
	// save).  This is the arch-dependent layer of the port.
	sched := k.M.Func("schedule")
	b.SetFunc(sched)
	sched.Subsystem = SubArchDep
	next := b.Call(k.M.Func("pick_next"))
	none := b.ICmp(ir.PredEQ, b.PtrToInt(next, ir.I64), c64(0))
	b.If(none, func() {
		// Nothing runnable.  If the caller itself is runnable, keep going;
		// a fully blocked system is a guest deadlock.
		curOK := b.ICmp(ir.PredEQ, b.Load(b.FieldAddr(b.Load(k.Cur()), 1)), c64(TaskRunnable))
		b.If(curOK, func() { b.Ret(nil) })
		k.op(svaops.Halt, c64(111)) // deadlock marker
		b.Ret(nil)
	})
	same := b.ICmp(ir.PredEQ, b.PtrToInt(next, ir.I64), b.PtrToInt(b.Load(k.Cur()), ir.I64))
	b.If(same, func() { b.Ret(nil) })
	b.Store(next, k.Sched())
	me := b.Load(k.Cur())
	stbuf := b.Bitcast(b.FieldAddr(me, 4), bp)
	// Lazy FP save (§3.3): only written if the FP unit was touched since
	// the last load, so integer-only switches stay cheap.
	k.op(svaops.SaveFP, stbuf, c64(0))
	k.op(svaops.SaveInteger, stbuf)
	// Snapshot path: sched_target != current.  Resume path: whoever loaded
	// us stored us into both current and sched_target.
	resumed := b.ICmp(ir.PredEQ,
		b.PtrToInt(b.Load(k.Sched()), ir.I64),
		b.PtrToInt(b.Load(k.Cur()), ir.I64))
	b.If(resumed, func() { b.Ret(nil) })
	tgt := b.Load(k.Sched())
	b.Store(tgt, k.Cur())
	b.Store(tgt, k.Sched())
	k.op(svaops.SetKStack, b.Load(b.FieldAddr(tgt, 3)))
	k.op(svaops.LoadFP, b.Bitcast(b.FieldAddr(tgt, 4), bp))
	k.op(svaops.LoadInteger, b.Bitcast(b.FieldAddr(tgt, 4), bp))
	b.Ret(nil) // unreachable: load.integer switches away

	// do_exit(code): terminate the current task.
	k.fn("do_exit", SubCore, ir.Void, []*ir.Type{ir.I64}, "code")
	me2 := b.Load(k.Cur())
	b.Store(b.Param(0), b.FieldAddr(me2, 6))
	b.Store(c64(TaskZombie), b.FieldAddr(me2, 1))
	// Close every open file.
	b.For("fd", c64(0), c64(NumFiles), c64(1), func(fd ir.Value) {
		slot := b.Index(b.FieldAddr(me2, 5), fd)
		f := b.Load(slot)
		has := b.ICmp(ir.PredNE, b.PtrToInt(f, ir.I64), c64(0))
		b.If(has, func() {
			b.Call(k.M.Func("file_close"), f)
			b.Store(ir.Null(ir.PointerTo(k.FileT)), slot)
		})
	})
	// Wake a vforked or waiting parent.
	parent := b.Call(k.M.Func("find_task"), b.Load(b.FieldAddr(me2, 2)))
	hasP := b.ICmp(ir.PredNE, b.PtrToInt(parent, ir.I64), c64(0))
	b.If(hasP, func() {
		st := b.Load(b.FieldAddr(parent, 1))
		waiting := b.Or(b.ZExt(b.ICmp(ir.PredEQ, st, c64(TaskVfork)), ir.I64),
			b.ZExt(b.ICmp(ir.PredEQ, st, c64(TaskWaiting)), ir.I64))
		w := b.ICmp(ir.PredNE, waiting, c64(0))
		b.If(w, func() { b.Call(k.M.Func("wake_task"), parent) })
	})
	// If this was the last live task, the machine halts with its code.
	nextT := b.Call(k.M.Func("pick_next"))
	lone := b.ICmp(ir.PredEQ, b.PtrToInt(nextT, ir.I64), c64(0))
	b.If(lone, func() {
		k.op(svaops.Halt, b.Param(0))
		b.Ret(nil)
	})
	b.Call(k.M.Func("schedule"))
	b.Ret(nil) // never reached: zombies are not rescheduled

	// prog_lookup(name) -> entry address of a registered program.
	k.fn("prog_lookup", SubCore, ir.I64, []*ir.Type{bp}, "name")
	b.For("i", c64(0), c64(16), c64(1), func(i ir.Value) {
		ent := b.Index(k.ProgTable, i)
		addr := b.Load(b.FieldAddr(ent, 1))
		has := b.ICmp(ir.PredNE, addr, c64(0))
		b.If(has, func() {
			nm := b.Bitcast(b.FieldAddr(ent, 0), bp)
			eq := b.Call(k.M.Func("streq_k"), nm, b.Param(0))
			hit := b.ICmp(ir.PredNE, eq, c64(0))
			b.If(hit, func() { b.Ret(addr) })
		})
	})
	b.Ret(c64(0))

	// --- syscalls ---------------------------------------------------------

	k.syscall("sys_getpid", SubCore)
	b.Ret(b.Load(b.FieldAddr(b.Load(k.Cur()), 0)))

	k.syscall("sys_yield", SubCore)
	b.Call(k.M.Func("schedule"))
	b.Ret(c64(0))

	k.syscall("sys_exit", SubCore)
	b.Call(k.M.Func("do_exit"), b.Param(1))
	b.Ret(c64(0))

	// sys_fork(icp): clone the interrupted user context (vfork semantics).
	k.syscall("sys_fork", SubCore)
	child := b.Call(k.M.Func("task_alloc"))
	nomem := b.ICmp(ir.PredEQ, b.PtrToInt(child, ir.I64), c64(0))
	b.If(nomem, func() { b.Ret(errno(ENOMEM)) })
	me3 := b.Load(k.Cur())
	b.Store(b.Load(b.FieldAddr(me3, 0)), b.FieldAddr(child, 2)) // parent pid
	// Share open files (bump refcounts).
	b.For("fd", c64(0), c64(NumFiles), c64(1), func(fd ir.Value) {
		f := b.Load(b.Index(b.FieldAddr(me3, 5), fd))
		has := b.ICmp(ir.PredNE, b.PtrToInt(f, ir.I64), c64(0))
		b.If(has, func() {
			b.Store(b.Add(b.Load(b.FieldAddr(f, 2)), c64(1)), b.FieldAddr(f, 2))
			b.Store(f, b.Index(b.FieldAddr(child, 5), fd))
		})
	})
	// Inherit signal handlers and memory layout (shared address space).
	b.For("s", c64(0), c64(NumSigs), c64(1), func(s ir.Value) {
		b.Store(b.Load(b.Index(b.FieldAddr(me3, 7), s)), b.Index(b.FieldAddr(child, 7), s))
	})
	b.Store(b.Load(b.FieldAddr(me3, 9)), b.FieldAddr(child, 9))
	b.Store(b.Load(b.FieldAddr(me3, 10)), b.FieldAddr(child, 10))
	b.Store(b.Load(b.FieldAddr(me3, 11)), b.FieldAddr(child, 11))
	// The child's state is a copy of the interrupted context with a 0
	// return value, its own kernel stack (copy_thread) and a fresh user
	// stack region for new frames — the shared-address-space substitute
	// for copy-on-write (DESIGN.md §8).
	cb := b.Bitcast(b.FieldAddr(child, 4), bp)
	k.op(svaops.IContextSave, b.Param(0), cb)
	k.op(svaops.IContextSetRetval, cb, c64(0))
	k.op(svaops.StateSetKStack, cb, b.Load(b.FieldAddr(child, 3)))
	custk := b.Call(k.M.Func("user_stack_alloc"))
	k.op(svaops.StateSetUStack, cb, custk)
	b.Store(custk, b.FieldAddr(child, 11))
	k.op(svaops.IContextCommit, b.Param(0))
	b.Store(c64(TaskRunnable), b.FieldAddr(child, 1))
	b.Ret(b.Load(b.FieldAddr(child, 0)))

	// sys_execve(icp, name_uaddr, arg): replace this process's image.
	k.syscall("sys_execve", SubCore)
	nameBuf := b.Alloca(ir.ArrayOf(24, ir.I8), "name")
	nb := b.Bitcast(nameBuf, bp)
	r := b.Call(k.M.Func("strncpy_from_user"), nb, b.Param(1), c64(24))
	fault := b.ICmp(ir.PredSLT, r, c64(0))
	b.If(fault, func() { b.Ret(errno(EFAULT)) })
	fnaddr := b.Call(k.M.Func("prog_lookup"), nb)
	noent := b.ICmp(ir.PredEQ, fnaddr, c64(0))
	b.If(noent, func() { b.Ret(errno(ENOENT)) })
	me4 := b.Load(k.Cur())
	// The old image's stack and heap arena are dead once the new image
	// replaces the interrupted context; recycle them.
	b.Call(k.M.Func("user_stack_free"), b.Load(b.FieldAddr(me4, 11)))
	b.Call(k.M.Func("user_arena_free"), b.Load(b.FieldAddr(me4, 9)))
	ustk := b.Call(k.M.Func("user_stack_alloc"))
	arena := b.Call(k.M.Func("user_arena_alloc"), c64(UserBrkArena))
	b.Store(ustk, b.FieldAddr(me4, 11))
	b.Store(arena, b.FieldAddr(me4, 9))
	b.Store(arena, b.FieldAddr(me4, 10))
	k.op(svaops.ExecState, b.Param(0), b.IntToPtr(fnaddr, bp), b.Param(2), ustk)
	// vfork release: wake a suspended parent.
	parent2 := b.Call(k.M.Func("find_task"), b.Load(b.FieldAddr(me4, 2)))
	hasP2 := b.ICmp(ir.PredNE, b.PtrToInt(parent2, ir.I64), c64(0))
	b.If(hasP2, func() {
		vf := b.ICmp(ir.PredEQ, b.Load(b.FieldAddr(parent2, 1)), c64(TaskVfork))
		b.If(vf, func() { b.Call(k.M.Func("wake_task"), parent2) })
	})
	b.Ret(c64(0))

	// sys_waitpid(icp, pid): reap a zombie child (pid<=0: any child).
	k.syscall("sys_waitpid", SubCore)
	b.Loop(func() {
		me5 := b.Load(k.Cur())
		myPid := b.Load(b.FieldAddr(me5, 0))
		foundChild := b.Alloca(ir.I64, "haschild")
		b.Store(c64(0), foundChild)
		b.For("i", c64(0), c64(NumPids), c64(1), func(i ir.Value) {
			t := b.Load(b.Index(k.PidTable, i))
			has := b.ICmp(ir.PredNE, b.PtrToInt(t, ir.I64), c64(0))
			b.If(has, func() {
				isChild := b.ICmp(ir.PredEQ, b.Load(b.FieldAddr(t, 2)), myPid)
				b.If(isChild, func() {
					wantThis := b.ICmp(ir.PredSLE, b.Param(1), c64(0))
					thisPid := b.ICmp(ir.PredEQ, b.Load(b.FieldAddr(t, 0)), b.Param(1))
					match := b.Or(b.ZExt(wantThis, ir.I64), b.ZExt(thisPid, ir.I64))
					m := b.ICmp(ir.PredNE, match, c64(0))
					b.If(m, func() {
						b.Store(c64(1), foundChild)
						z := b.ICmp(ir.PredEQ, b.Load(b.FieldAddr(t, 1)), c64(TaskZombie))
						b.If(z, func() {
							// Reap: recycle stacks, free the slot and task.
							rp := b.Load(b.FieldAddr(t, 0))
							b.Call(k.M.Func("kstack_free"), b.Load(b.FieldAddr(t, 3)))
							b.Call(k.M.Func("user_stack_free"), b.Load(b.FieldAddr(t, 11)))
							b.Call(k.M.Func("user_arena_free"), b.Load(b.FieldAddr(t, 9)))
							b.Store(ir.Null(ir.PointerTo(k.TaskT)), b.Index(k.PidTable, rp))
							b.Call(k.M.Func("kmem_cache_free"), b.Load(taskCache), b.Bitcast(t, bp))
							b.Ret(rp)
						})
					})
				})
			})
		})
		none2 := b.ICmp(ir.PredEQ, b.Load(foundChild), c64(0))
		b.If(none2, func() { b.Ret(errno(ECHILD)) })
		b.Store(c64(TaskWaiting), b.FieldAddr(b.Load(k.Cur()), 1))
		b.Call(k.M.Func("schedule"))
	})
	b.Seal()

	// sys_brk(icp, incr): classic sbrk.  Returns the old break.
	k.syscall("sys_brk", SubCore)
	me6 := b.Load(k.Cur())
	base := b.Load(b.FieldAddr(me6, 9))
	lazy := b.ICmp(ir.PredEQ, base, c64(0))
	b.If(lazy, func() {
		a := b.Call(k.M.Func("user_arena_alloc"), c64(UserBrkArena))
		b.Store(a, b.FieldAddr(me6, 9))
		b.Store(a, b.FieldAddr(me6, 10))
	})
	old := b.Load(b.FieldAddr(me6, 10))
	nw := b.Add(old, b.Param(1))
	low := b.Load(b.FieldAddr(me6, 9))
	under := b.ICmp(ir.PredULT, nw, low)
	over := b.ICmp(ir.PredUGT, nw, b.Add(low, c64(UserBrkArena)))
	bad2 := b.Or(b.ZExt(under, ir.I64), b.ZExt(over, ir.I64))
	isBad2 := b.ICmp(ir.PredNE, bad2, c64(0))
	b.If(isBad2, func() { b.Ret(errno(ENOMEM)) })
	b.Store(nw, b.FieldAddr(me6, 10))
	b.Ret(old)

	// sys_getrusage(icp, ubuf): utime/stime in cycles + allocation stats.
	k.syscall("sys_getrusage", SubCore)
	ru := b.Alloca(ir.ArrayOf(4, ir.I64), "ru")
	cyc := k.op(svaops.Cycles)
	b.Store(cyc, b.Index(ru, c32(0)))
	me7 := b.Load(k.Cur())
	b.Store(b.Load(b.FieldAddr(me7, 13)), b.Index(ru, c32(1)))
	b.Store(b.Load(b.FieldAddr(me7, 0)), b.Index(ru, c32(2)))
	b.Store(c64(0), b.Index(ru, c32(3)))
	left := b.Call(k.M.Func("__copy_to_user"), b.Param(1), b.Bitcast(ru, bp), c64(32))
	f2 := b.ICmp(ir.PredNE, left, c64(0))
	b.If(f2, func() { b.Ret(errno(EFAULT)) })
	b.Ret(c64(0))

	// sys_gettimeofday(icp, ubuf): derive a timeval from the cycle counter.
	k.syscall("sys_gettimeofday", SubCore)
	tv := b.Alloca(ir.ArrayOf(2, ir.I64), "tv")
	cyc2 := k.op(svaops.Cycles)
	b.Store(b.UDiv(cyc2, c64(1_000_000)), b.Index(tv, c32(0)))
	b.Store(b.URem(cyc2, c64(1_000_000)), b.Index(tv, c32(1)))
	left2 := b.Call(k.M.Func("__copy_to_user"), b.Param(1), b.Bitcast(tv, bp), c64(16))
	f3 := b.ICmp(ir.PredNE, left2, c64(0))
	b.If(f3, func() { b.Ret(errno(EFAULT)) })
	b.Ret(c64(0))

	// proc_init(kstackTop): the task cache plus task 1 (the boot task).
	k.fn("proc_init", SubCore, ir.Void, []*ir.Type{ir.I64}, "kstack")
	b.Store(b.Call(k.M.Func("kmem_cache_create"), c64(layout.Size(k.TaskT))), taskCache)
	raw2 := b.Call(k.M.Func("kmem_cache_alloc"), b.Load(taskCache))
	t0 := b.Bitcast(raw2, taskP)
	b.Call(k.M.Func("memzero_k"), raw2, c64(layout.Size(k.TaskT)))
	b.Store(c64(1), b.FieldAddr(t0, 0))
	b.Store(c64(TaskRunnable), b.FieldAddr(t0, 1))
	b.Store(b.Param(0), b.FieldAddr(t0, 3))
	b.Store(t0, b.Index(k.PidTable, c64(1)))
	b.Store(t0, k.Cur())
	b.Store(t0, k.Sched())
	b.Ret(nil)

	// --- SMP dispatch (DESIGN.md §13) -------------------------------------
	//
	// The host boot loader calls smp_spawn serially on the boot CPU to park
	// TaskSMPReady tasks, then runs smp_take concurrently on every virtual
	// CPU.  The only cross-CPU handoff is the compare-and-swap claim on the
	// task-state field; stack and pid-table recycling (smp_spawn, smp_finish)
	// stay serialized on the boot CPU, so the free lists never race.

	smpClaimed := k.global("smp_claimed", ir.ArrayOf(MaxCPUs, ir.I64), nil, SubArchDep)

	// smp_spawn(fnaddr, arg) -> pid: fabricate a user task running
	// fnaddr(arg) on fresh stacks, parked in the SMPReady state.
	k.fn("smp_spawn", SubArchDep, ir.I64, []*ir.Type{ir.I64, ir.I64}, "fnaddr", "arg")
	st := b.Call(k.M.Func("task_alloc"))
	snull := b.ICmp(ir.PredEQ, b.PtrToInt(st, ir.I64), c64(0))
	b.If(snull, func() { b.Ret(errno(ENOMEM)) })
	b.Store(c64(1), b.FieldAddr(st, 2)) // child of the boot task
	sustk := b.Call(k.M.Func("user_stack_alloc"))
	b.Store(sustk, b.FieldAddr(st, 11))
	k.op(svaops.InitUserState,
		b.Bitcast(b.FieldAddr(st, 4), bp),
		b.IntToPtr(b.Param(0), bp),
		b.Param(1),
		sustk,
		b.Load(b.FieldAddr(st, 3)))
	b.Store(c64(TaskSMPReady), b.FieldAddr(st, 1))
	b.Ret(b.Load(b.FieldAddr(st, 0)))

	// smp_take(cpu, ncpu): claim one parked task from this CPU's static
	// partition (pid mod ncpu) and switch into it.  The claim is a CAS on
	// the state field, so two CPUs scanning concurrently can never run the
	// same task.  Returns 0 with smp_claimed[cpu] == 0 when the partition
	// is drained; otherwise load.integer switches away and the claimed
	// task's completion returns to the host boot loader, which re-invokes
	// smp_take — the idle loop lives host-side, one guest activation per
	// dispatched task.
	k.fn("smp_take", SubArchDep, ir.I64, []*ir.Type{ir.I64, ir.I64}, "cpu", "ncpu")
	b.Store(c64(0), b.Index(smpClaimed, b.And(b.Param(0), c64(MaxCPUs-1))))
	b.For("pid", c64(2), c64(NumPids), c64(1), func(pid ir.Value) {
		mine := b.ICmp(ir.PredEQ, b.SRem(pid, b.Param(1)), b.SRem(b.Param(0), b.Param(1)))
		b.If(mine, func() {
			ct := b.Load(b.Index(k.PidTable, pid))
			has := b.ICmp(ir.PredNE, b.PtrToInt(ct, ir.I64), c64(0))
			b.If(has, func() {
				old := b.CmpXchg(b.FieldAddr(ct, 1), c64(TaskSMPReady), c64(TaskRunnable))
				won := b.ICmp(ir.PredEQ, old, c64(TaskSMPReady))
				b.If(won, func() {
					b.Store(ct, k.Cur())
					b.Store(ct, k.Sched())
					b.Store(b.Load(b.FieldAddr(ct, 0)), b.Index(smpClaimed, b.And(b.Param(0), c64(MaxCPUs-1))))
					k.op(svaops.LoadInteger, b.Bitcast(b.FieldAddr(ct, 4), bp))
					b.Ret(c64(0)) // unreachable: load.integer switches away
				})
			})
		})
	})
	b.Ret(c64(0))

	// smp_finish(pid): reap a completed SMP task (boot CPU, after join).
	k.fn("smp_finish", SubArchDep, ir.I64, []*ir.Type{ir.I64}, "pid")
	ft := b.Call(k.M.Func("find_task"), b.Param(0))
	fnull := b.ICmp(ir.PredEQ, b.PtrToInt(ft, ir.I64), c64(0))
	b.If(fnull, func() { b.Ret(errno(ESRCH)) })
	b.Call(k.M.Func("kstack_free"), b.Load(b.FieldAddr(ft, 3)))
	b.Call(k.M.Func("user_stack_free"), b.Load(b.FieldAddr(ft, 11)))
	b.Call(k.M.Func("user_arena_free"), b.Load(b.FieldAddr(ft, 9)))
	b.Store(ir.Null(taskP), b.Index(k.PidTable, b.Param(0)))
	b.Call(k.M.Func("kmem_cache_free"), b.Load(taskCache), b.Bitcast(ft, bp))
	b.Ret(c64(0))
}
