package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// Descriptor-ring NIC driver (net/drivers): the guest half of the Xen
// split-driver design in hw/ring.go.  Each virtual CPU owns one queue
// pair — Tx ring q*2, Rx ring q*2+1 — so the rings need no guest-side
// locking: per-CPU indexing through the masked sva.cpu.id is the whole
// concurrency story, exactly like current_task.
//
// Memory plan (all statically-sized kernel globals, so the safety
// compiler's object bounds cover every descriptor and frame access):
//
//	netring_area  per-ring descriptor rings: ring r at r*NetRingBytes
//	netring_bufs  frame buffers: 64 Rx + 8 pump buffers per queue
//	netring_seen  per-CPU cursor of Rx completions already served
//	netring_treap per-CPU cursor of Tx completions already reposted
//
// The serve loop trusts nothing the host wrote: a frame address coming
// back through a descriptor is re-derived as an offset into netring_bufs
// and re-indexed through the bounds-checked Index, so a corrupted
// descriptor lands on a safety violation, not a wild pointer.
const (
	NetRingSlots = 64  // descriptors per ring (power of two)
	NetFrameSize = 256 // bytes per frame buffer
	NetPumpBufs  = 8   // extra per-queue buffers for the self-driving pump
	NetRingBytes = 16 + NetRingSlots*16
	netQBufs     = NetRingSlots + NetPumpBufs
)

func (k *K) buildNetRing() {
	b := k.B

	area := k.global("netring_area", ir.ArrayOf(MaxCPUs*2*NetRingBytes, ir.I8), nil, SubNetDrv)
	bufs := k.global("netring_bufs", ir.ArrayOf(MaxCPUs*netQBufs*NetFrameSize, ir.I8), nil, SubNetDrv)
	seenG := k.global("netring_seen", ir.ArrayOf(MaxCPUs, ir.I64), nil, SubNetDrv)
	treapG := k.global("netring_treap", ir.ArrayOf(MaxCPUs, ir.I64), nil, SubNetDrv)
	netIntrs := k.global("net_intrs", ir.I64, c64(0), SubNetDrv)

	// nic_isr(vec, icp): coalesced completion interrupt — count it; the
	// serve loop polls rings on its own schedule.
	k.fn("nic_isr", SubArchDep, ir.Void, []*ir.Type{ir.I64, ir.I64}, "vec", "icp")
	b.AtomicRMW(ir.RMWAdd, netIntrs, c64(1))
	b.Ret(nil)

	// netring_init(): attach every queue pair and post each queue's Rx
	// buffers.  Fully unrolled at build time: every ring index, ring base
	// and buffer offset is a constant the verifier can see.
	k.fn("netring_init", SubNetDrv, ir.Void, nil)
	for q := 0; q < MaxCPUs; q++ {
		for dir := 0; dir < 2; dir++ {
			r := q*2 + dir
			base := b.Index(area, c64(int64(r*NetRingBytes)))
			k.op(svaops.NetRingAttach, c64(int64(r)), base, c64(NetRingSlots))
		}
		rx := int64(q*2 + 1)
		for i := 0; i < NetRingSlots; i++ {
			off := int64((q*netQBufs + i) * NetFrameSize)
			k.op(svaops.NetPost, c64(rx), b.Index(bufs, c64(off)), c64(NetFrameSize))
		}
	}
	b.Ret(nil)

	// sys_netserve(icp, budget): the TCP-ish request/response server.
	// Ring the Rx doorbell, serve up to budget completed request frames
	// (checksum the payload, stamp the sum into the reply header, post
	// the same buffer on the Tx ring), ring the Tx doorbell, then repost
	// transmitted buffers as fresh Rx capacity.  Returns frames served.
	k.syscall("sys_netserve", SubNetDrv)
	budget := b.Param(1)
	q := b.And(k.op(svaops.CPUID), c64(MaxCPUs-1))
	txRing := b.Mul(q, c64(2))
	rxRing := b.Add(txRing, c64(1))
	rxBase := b.Mul(rxRing, c64(NetRingBytes))
	txBase := b.Mul(txRing, c64(NetRingBytes))
	bufsBase := b.PtrToInt(bufs, ir.I64)

	k.op(svaops.NetDoorbell, rxRing)
	cons := k.op(svaops.NetReap, rxRing)

	seenP := b.Index(seenG, q)
	seen := b.Alloca(ir.I64, "seen")
	b.Store(b.Load(seenP), seen)
	served := b.Alloca(ir.I64, "served")
	b.Store(c64(0), served)
	full := b.Alloca(ir.I64, "txfull")
	b.Store(c64(0), full)

	b.While(func() ir.Value {
		more := b.ICmp(ir.PredULT, b.Load(seen), cons)
		room := b.ICmp(ir.PredULT, b.Load(served), budget)
		open := b.ICmp(ir.PredEQ, b.Load(full), c64(0))
		return b.And(b.And(more, room), open)
	}, func() {
		slot := b.And(b.Load(seen), c64(NetRingSlots-1))
		dOff := b.Add(b.Add(rxBase, c64(16)), b.Mul(slot, c64(16)))
		st := b.ZExt(b.Load(b.Bitcast(b.Index(area, b.Add(dOff, c64(12))), ir.PointerTo(ir.I32))), ir.I64)
		isDone := b.ICmp(ir.PredEQ, st, c64(1))
		b.If(isDone, func() {
			ln := b.ZExt(b.Load(b.Bitcast(b.Index(area, b.Add(dOff, c64(8))), ir.PointerTo(ir.I32))), ir.I64)
			addr := b.Load(b.Bitcast(b.Index(area, dOff), ir.PointerTo(ir.I64)))
			// Re-derive the buffer from the (untrusted) descriptor
			// address; Index bounds-checks the offset against the pool.
			frameP := b.Index(bufs, b.Sub(addr, bufsBase))
			sum := b.Alloca(ir.I64, "sum")
			b.Store(c64(0), sum)
			j := b.Alloca(ir.I64, "j")
			b.Store(c64(24), j)
			b.While(func() ir.Value {
				return b.ICmp(ir.PredULT, b.Load(j), ln)
			}, func() {
				ch := b.ZExt(b.Load(b.GEP(frameP, b.Load(j))), ir.I64)
				b.Store(b.Add(b.Load(sum), ch), sum)
				b.Store(b.Add(b.Load(j), c64(1)), j)
			})
			b.Store(b.Load(sum), b.Bitcast(b.GEP(frameP, c64(16)), ir.PointerTo(ir.I64)))
			rc := k.op(svaops.NetPost, txRing, frameP, ln)
			txOK := b.ICmp(ir.PredEQ, rc, c64(0))
			b.If(txOK, func() {
				b.Store(b.Add(b.Load(served), c64(1)), served)
			})
			b.If(b.ICmp(ir.PredNE, rc, c64(0)), func() {
				b.Store(c64(1), full)
			})
		})
		b.If(b.ICmp(ir.PredEQ, b.Load(full), c64(0)), func() {
			b.Store(b.Add(b.Load(seen), c64(1)), seen)
		})
	})
	b.Store(b.Load(seen), seenP)

	k.op(svaops.NetDoorbell, txRing)
	tcons := k.op(svaops.NetReap, txRing)
	treapP := b.Index(treapG, q)
	tr := b.Alloca(ir.I64, "treap")
	b.Store(b.Load(treapP), tr)
	rxFull := b.Alloca(ir.I64, "rxfull")
	b.Store(c64(0), rxFull)
	b.While(func() ir.Value {
		more := b.ICmp(ir.PredULT, b.Load(tr), tcons)
		open := b.ICmp(ir.PredEQ, b.Load(rxFull), c64(0))
		return b.And(more, open)
	}, func() {
		tslot := b.And(b.Load(tr), c64(NetRingSlots-1))
		tOff := b.Add(b.Add(txBase, c64(16)), b.Mul(tslot, c64(16)))
		taddr := b.Load(b.Bitcast(b.Index(area, tOff), ir.PointerTo(ir.I64)))
		tbufP := b.Index(bufs, b.Sub(taddr, bufsBase))
		rc := k.op(svaops.NetPost, rxRing, tbufP, c64(NetFrameSize))
		b.If(b.ICmp(ir.PredEQ, rc, c64(0)), func() {
			b.Store(b.Add(b.Load(tr), c64(1)), tr)
		})
		b.If(b.ICmp(ir.PredNE, rc, c64(0)), func() {
			b.Store(c64(1), rxFull)
		})
	})
	b.Store(b.Load(tr), treapP)
	b.Ret(b.Load(served))

	// sys_netpump(icp, n): self-driving load source for the fault
	// campaign — stamp up to n (≤ NetPumpBufs) request frames into this
	// queue's pump buffers and post them on the Tx ring.  Under loopback
	// they come straight back as Rx traffic for sys_netserve.  Pump
	// buffers may transiently alias Rx postings; that is acceptable for a
	// chaos driver and irrelevant to host safety.
	k.syscall("sys_netpump", SubNetDrv)
	pn := b.Param(1)
	pq := b.And(k.op(svaops.CPUID), c64(MaxCPUs-1))
	ptx := b.Mul(pq, c64(2))
	want := b.Select(b.ICmp(ir.PredUGT, pn, c64(NetPumpBufs)), c64(NetPumpBufs), pn)
	posted := b.Alloca(ir.I64, "posted")
	b.Store(c64(0), posted)
	i := b.Alloca(ir.I64, "i")
	b.Store(c64(0), i)
	stop := b.Alloca(ir.I64, "stop")
	b.Store(c64(0), stop)
	b.While(func() ir.Value {
		more := b.ICmp(ir.PredULT, b.Load(i), want)
		open := b.ICmp(ir.PredEQ, b.Load(stop), c64(0))
		return b.And(more, open)
	}, func() {
		idx := b.Add(b.Add(b.Mul(pq, c64(netQBufs)), c64(NetRingSlots)), b.And(b.Load(i), c64(NetPumpBufs-1)))
		bufP := b.Index(bufs, b.Mul(idx, c64(NetFrameSize)))
		b.Store(b.Load(i), b.Bitcast(bufP, ir.PointerTo(ir.I64)))
		b.Store(pq, b.Bitcast(b.GEP(bufP, c64(8)), ir.PointerTo(ir.I64)))
		rc := k.op(svaops.NetPost, ptx, bufP, c64(128))
		b.If(b.ICmp(ir.PredEQ, rc, c64(0)), func() {
			b.Store(b.Add(b.Load(posted), c64(1)), posted)
			b.Store(b.Add(b.Load(i), c64(1)), i)
		})
		b.If(b.ICmp(ir.PredNE, rc, c64(0)), func() {
			b.Store(c64(1), stop)
		})
	})
	k.op(svaops.NetDoorbell, ptx)
	b.Ret(b.Load(posted))
}
