package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// buildSyscalls emits syscalls_init, which registers every handler with
// the SVM through sva.register.syscall — the registration the pointer
// analysis uses to resolve internal system calls (§4.8).
func (k *K) buildSyscalls() {
	b := k.B
	k.fn("syscalls_init", SubArchDep, ir.Void, nil)
	regs := []struct {
		num  int64
		name string
	}{
		{SysExit, "sys_exit"},
		{SysFork, "sys_fork"},
		{SysRead, "sys_read"},
		{SysWrite, "sys_write"},
		{SysOpen, "sys_open"},
		{SysClose, "sys_close"},
		{SysWaitpid, "sys_waitpid"},
		{SysUnlink, "sys_unlink"},
		{SysExecve, "sys_execve"},
		{SysLseek, "sys_lseek"},
		{SysGetpid, "sys_getpid"},
		{SysKill, "sys_kill"},
		{SysDup, "sys_dup"},
		{SysPipe, "sys_pipe"},
		{SysBrk, "sys_brk"},
		{SysSigaction, "sys_sigaction"},
		{SysGetrusage, "sys_getrusage"},
		{SysGettimeofday, "sys_gettimeofday"},
		{SysNetSend, "sys_netsend"},
		{SysNetRecv, "sys_netrecv"},
		{SysNetServe, "sys_netserve"},
		{SysNetPump, "sys_netpump"},
		{SysChanSend, "sys_chan_send"},
		{SysChanRecv, "sys_chan_recv"},
		{SysYield, "sys_yield"},
		{SysSetsockoptMSFilter, "sys_setsockopt_msfilter"},
		{SysIGMPInput, "sys_igmp_input"},
		{SysBTIoctl, "sys_bt_ioctl"},
		{SysPollEvents, "sys_poll_events"},
		{SysCoreDump, "sys_coredump"},
	}
	for _, r := range regs {
		f := k.M.Func(r.name)
		if f == nil {
			panic("kernel: unregistered syscall implementation " + r.name)
		}
		k.op(svaops.RegisterSyscall, c64(r.num), b.Bitcast(f, k.BP))
	}
	b.Ret(nil)
}

// buildEntry emits the timer interrupt handler and kernel_entry(kstackTop):
// the boot sequence.  The host "boot loader" creates an execution state for
// this function and runs it; afterwards the system is live and user
// programs can trap in.
func (k *K) buildEntry() {
	b := k.B
	banner := k.global("boot_banner", ir.ArrayOf(20, ir.I8), &ir.ConstString{S: "SVA vkernel booted\n"}, SubCore)
	jiffies := k.global("jiffies", ir.I64, c64(0), SubCore)

	// timer_isr(vec, icp): the clock tick, delivered asynchronously by the
	// SVM whenever the interrupt controller is enabled.
	k.fn("timer_isr", SubArchDep, ir.Void, []*ir.Type{ir.I64, ir.I64}, "vec", "icp")
	b.AtomicRMW(ir.RMWAdd, jiffies, c64(1))
	b.Ret(nil)

	k.fn("kernel_entry", SubCore, ir.I64, []*ir.Type{ir.I64}, "kstack")
	// Arch port: establish the kernel's identity mappings through the
	// SVA-OS MMU interface (the SVM mediates every mapping, §3.4).  The
	// miniature machine runs identity-mapped; a page per region suffices
	// to exercise the mediation path.
	for _, base := range []int64{0x0010_0000, 0x8000_0000, 0x8010_0000, 0xC000_0000} {
		k.op(svaops.MMUMap, c64(base), c64(base), c64(7 /* r|w|x */))
	}
	b.Call(k.M.Func("mm_init"))
	b.Call(k.M.Func("pipe_init"))
	b.Call(k.M.Func("fs_init"))
	b.Call(k.M.Func("net_init"))
	b.Call(k.M.Func("netring_init"))
	b.Call(k.M.Func("chanring_init"))
	b.Call(k.M.Func("proc_init"), b.Param(0))
	b.Call(k.M.Func("syscalls_init"))
	// Clock: register the tick handler, program the interval timer, and
	// enable interrupt delivery.
	k.op(svaops.RegisterInterrupt, c64(32), b.Bitcast(k.M.Func("timer_isr"), k.BP))
	k.op(svaops.RegisterInterrupt, c64(35), b.Bitcast(k.M.Func("nic_isr"), k.BP))
	k.op(svaops.RegisterInterrupt, c64(37), b.Bitcast(k.M.Func("chan_isr"), k.BP))
	k.op(svaops.TimerArm, c64(20000))
	k.op(svaops.IntrEnable, c64(1))
	// Manufactured BIOS range, registered before first use (§4.7).
	k.op(svaops.PseudoAlloc, c64(0xE0000), c64(0xFFFFF))
	// Manufactured descriptor-table slab: 16 contiguous 512-byte entries,
	// declared in one batch (sva.pool.regbatch after safety compilation).
	k.op(svaops.PseudoAllocBatch, c64(0xD0000), c64(16), c64(512))
	k.Ledger.Analysis[SubCore]++
	dtab := b.IntToPtr(c64(0xD0000), k.BP)
	// Walk descriptor 0 (each batch element is its own object, so indexing
	// must stay inside one element — crossing into element 1 would trap).
	dsum := b.Alloca(ir.I64, "dsum")
	b.Store(c64(0), dsum)
	b.For("d", c64(0), c64(16), c64(1), func(d ir.Value) {
		ch := b.Load(b.GEP(dtab, b.Mul(d, c64(32))))
		b.Store(b.Add(b.Load(dsum), b.ZExt(ch, ir.I64)), dsum)
	})
	bios := b.IntToPtr(c64(0xE0000), k.BP)
	// Scan for an ACPI-style signature (exercises the registered region).
	sum := b.Alloca(ir.I64, "sum")
	b.Store(c64(0), sum)
	b.For("i", c64(0), c64(64), c64(1), func(i ir.Value) {
		ch := b.Load(b.GEP(bios, b.Mul(i, c64(512))))
		b.Store(b.Add(b.Load(sum), b.ZExt(ch, ir.I64)), sum)
	})
	b.Call(k.M.Func("kputs"), b.Bitcast(banner, k.BP))
	b.Ret(b.Load(sum))
}
