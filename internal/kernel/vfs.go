package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// rwSig is the file-operation signature: op(file, user_buf, n) -> i64.
func (k *K) rwSig() *ir.Type {
	return ir.FuncOf(ir.I64, []*ir.Type{ir.PointerTo(k.FileT), ir.I64, ir.I64}, false)
}

func (k *K) relSig() *ir.Type {
	return ir.FuncOf(ir.I64, []*ir.Type{ir.PointerTo(k.FileT)}, false)
}

// buildVFS emits the filesystem core: inode/file caches (distinct
// kmem_cache pools, like Linux's inode_cache and filp cache), a flat
// dentry table, ramfs file operations, and the fd-table syscalls.  File
// operations dispatch through function-pointer tables — the indirect-call
// pattern §4.8 discusses.
func (k *K) buildVFS() {
	b := k.B
	bp := k.BP
	inodeP := ir.PointerTo(k.InodeT)
	fileP := ir.PointerTo(k.FileT)

	inodeCache := k.global("inode_cache", ir.PointerTo(k.CacheT), nil, SubFS)
	fileCache := k.global("file_cache", ir.PointerTo(k.CacheT), nil, SubFS)
	consInode := k.global("console_inode", inodeP, nil, SubFS)
	_ = consInode // wired by buildFSInit

	var layout ir.Layout

	// --- ramfs file operations ---------------------------------------------

	// ramfs_read(file, ubuf, n): copy out of the in-memory file.
	k.fn("ramfs_read", SubFS, ir.I64, []*ir.Type{fileP, ir.I64, ir.I64}, "file", "ubuf", "n")
	ino := b.Load(b.FieldAddr(b.Param(0), 0))
	pos := b.Load(b.FieldAddr(b.Param(0), 1))
	size := b.Load(b.FieldAddr(ino, 1))
	atEOF := b.ICmp(ir.PredSGE, pos, size)
	b.If(atEOF, func() { b.Ret(c64(0)) })
	avail := b.Sub(size, pos)
	n := b.Select(b.ICmp(ir.PredULT, b.Param(2), avail), b.Param(2), avail)
	data := b.Load(b.FieldAddr(ino, 2))
	src := b.GEP(data, pos)
	left := b.Call(k.M.Func("__copy_to_user"), b.Param(1), src, n)
	copied := b.Sub(n, left)
	b.Store(b.Add(pos, copied), b.FieldAddr(b.Param(0), 1))
	b.Ret(copied)

	// ramfs_write(file, ubuf, n): grow (vmalloc) and copy in.
	k.fn("ramfs_write", SubFS, ir.I64, []*ir.Type{fileP, ir.I64, ir.I64}, "file", "ubuf", "n")
	ino2 := b.Load(b.FieldAddr(b.Param(0), 0))
	pos2 := b.Load(b.FieldAddr(b.Param(0), 1))
	need := b.Add(pos2, b.Param(2))
	cap2 := b.Load(b.FieldAddr(ino2, 3))
	tooSmall := b.ICmp(ir.PredUGT, need, cap2)
	b.If(tooSmall, func() {
		newCap := b.Mul(b.Add(need, c64(PageSize)), c64(2))
		nd := b.Call(k.M.Func("vmalloc"), newCap)
		old := b.Load(b.FieldAddr(ino2, 2))
		oldSize := b.Load(b.FieldAddr(ino2, 1))
		hasOld := b.ICmp(ir.PredNE, b.PtrToInt(old, ir.I64), c64(0))
		b.If(hasOld, func() {
			b.Call(svaops.Get(k.M, svaops.Memcpy), nd, old, oldSize)
		})
		b.Store(nd, b.FieldAddr(ino2, 2))
		b.Store(newCap, b.FieldAddr(ino2, 3))
	})
	data2 := b.Load(b.FieldAddr(ino2, 2))
	dst := b.GEP(data2, pos2)
	left2 := b.Call(k.M.Func("__copy_from_user"), dst, b.Param(1), b.Param(2))
	copied2 := b.Sub(b.Param(2), left2)
	newPos := b.Add(pos2, copied2)
	b.Store(newPos, b.FieldAddr(b.Param(0), 1))
	growFile := b.ICmp(ir.PredSGT, newPos, b.Load(b.FieldAddr(ino2, 1)))
	b.If(growFile, func() {
		b.Store(newPos, b.FieldAddr(ino2, 1))
	})
	b.Ret(copied2)

	// generic_release(file): default no-op release.
	k.fn("generic_release", SubFS, ir.I64, []*ir.Type{fileP}, "file")
	b.Ret(c64(0))

	// --- object allocation ----------------------------------------------------

	// inode_alloc(kind) -> inode* from the inode cache (a TH pool).
	k.fn("inode_alloc", SubFS, inodeP, []*ir.Type{ir.I64}, "kind")
	raw := b.Call(k.M.Func("kmem_cache_alloc"), b.Load(inodeCache))
	isNull := b.ICmp(ir.PredEQ, b.PtrToInt(raw, ir.I64), c64(0))
	b.If(isNull, func() { b.Ret(ir.Null(inodeP)) })
	b.Call(k.M.Func("memzero_k"), raw, c64(layout.Size(k.InodeT)))
	ip := b.Bitcast(raw, inodeP)
	b.Store(b.Param(0), b.FieldAddr(ip, 0))
	b.Store(c64(1), b.FieldAddr(ip, 5))
	b.Ret(ip)

	// file_alloc(inode, fops) -> file* from the file cache.
	k.fn("file_alloc", SubFS, fileP, []*ir.Type{inodeP, ir.PointerTo(k.FopsT)}, "inode", "fops")
	raw2 := b.Call(k.M.Func("kmem_cache_alloc"), b.Load(fileCache))
	isNull2 := b.ICmp(ir.PredEQ, b.PtrToInt(raw2, ir.I64), c64(0))
	b.If(isNull2, func() { b.Ret(ir.Null(fileP)) })
	b.Call(k.M.Func("memzero_k"), raw2, c64(layout.Size(k.FileT)))
	fp := b.Bitcast(raw2, fileP)
	b.Store(b.Param(0), b.FieldAddr(fp, 0))
	b.Store(c64(1), b.FieldAddr(fp, 2))
	b.Store(b.Param(1), b.FieldAddr(fp, 3))
	b.Ret(fp)

	// --- dentry table -----------------------------------------------------------

	// dentry_lookup(name) -> inode* (null if absent).
	k.fn("dentry_lookup", SubFS, inodeP, []*ir.Type{bp}, "name")
	found := b.Alloca(inodeP, "found")
	b.Store(ir.Null(inodeP), found)
	b.For("i", c64(0), c64(NumDentries), c64(1), func(i ir.Value) {
		dp := b.Index(k.Dentries, i)
		used := b.Load(b.FieldAddr(dp, 2))
		isUsed := b.ICmp(ir.PredNE, used, c64(0))
		b.If(isUsed, func() {
			nm := b.Bitcast(b.FieldAddr(dp, 0), bp)
			eq := b.Call(k.M.Func("streq_k"), nm, b.Param(0))
			hit := b.ICmp(ir.PredNE, eq, c64(0))
			b.If(hit, func() {
				b.Ret(b.Load(b.FieldAddr(dp, 1)))
			})
		})
	})
	b.Ret(b.Load(found))

	// dentry_add(name, inode) -> 0 or -ENFILE.
	k.fn("dentry_add", SubFS, ir.I64, []*ir.Type{bp, inodeP}, "name", "inode")
	b.For("i", c64(0), c64(NumDentries), c64(1), func(i ir.Value) {
		dp := b.Index(k.Dentries, i)
		used := b.Load(b.FieldAddr(dp, 2))
		free := b.ICmp(ir.PredEQ, used, c64(0))
		b.If(free, func() {
			nm := b.Bitcast(b.FieldAddr(dp, 0), bp)
			nlen := b.Call(k.M.Func("strlen_k"), b.Param(0))
			capped := b.Select(b.ICmp(ir.PredULT, nlen, c64(23)), nlen, c64(23))
			b.Call(svaops.Get(k.M, svaops.Memcpy), nm, b.Param(0), capped)
			b.Store(ir.I8c(0), b.GEP(nm, capped))
			b.Store(b.Param(1), b.FieldAddr(dp, 1))
			b.Store(c64(1), b.FieldAddr(dp, 2))
			b.Ret(c64(0))
		})
	})
	b.Ret(errno(ENFILE))

	// dentry_remove(name) -> 0 or -ENOENT.
	k.fn("dentry_remove", SubFS, ir.I64, []*ir.Type{bp}, "name")
	b.For("i", c64(0), c64(NumDentries), c64(1), func(i ir.Value) {
		dp := b.Index(k.Dentries, i)
		used := b.Load(b.FieldAddr(dp, 2))
		isUsed := b.ICmp(ir.PredNE, used, c64(0))
		b.If(isUsed, func() {
			nm := b.Bitcast(b.FieldAddr(dp, 0), bp)
			eq := b.Call(k.M.Func("streq_k"), nm, b.Param(0))
			hit := b.ICmp(ir.PredNE, eq, c64(0))
			b.If(hit, func() {
				b.Store(c64(0), b.FieldAddr(dp, 2))
				b.Ret(c64(0))
			})
		})
	})
	b.Ret(errno(ENOENT))

	// --- fd table ------------------------------------------------------------------

	// fd_install(file) -> fd or -EMFILE.
	k.fn("fd_install", SubFS, ir.I64, []*ir.Type{fileP}, "file")
	cur := b.Load(k.Cur())
	b.For("fd", c64(0), c64(NumFiles), c64(1), func(fd ir.Value) {
		slot := b.Index(b.FieldAddr(cur, 5), fd)
		empty := b.ICmp(ir.PredEQ, b.PtrToInt(b.Load(slot), ir.I64), c64(0))
		b.If(empty, func() {
			b.Store(b.Param(0), slot)
			b.Ret(fd)
		})
	})
	b.Ret(errno(EMFILE))

	// fd_get(fd) -> file* (null if bad).
	k.fn("fd_get", SubFS, fileP, []*ir.Type{ir.I64}, "fd")
	bad := b.Or(b.ZExt(b.ICmp(ir.PredSLT, b.Param(0), c64(0)), ir.I64),
		b.ZExt(b.ICmp(ir.PredSGE, b.Param(0), c64(NumFiles)), ir.I64))
	isBad := b.ICmp(ir.PredNE, bad, c64(0))
	b.If(isBad, func() { b.Ret(ir.Null(fileP)) })
	cur2 := b.Load(k.Cur())
	b.Ret(b.Load(b.Index(b.FieldAddr(cur2, 5), b.Param(0))))

	// file_close(file): drop a reference; on last close call the release
	// op (indirect call) and free the file.
	k.fn("file_close", SubFS, ir.I64, []*ir.Type{fileP}, "file")
	isNull3 := b.ICmp(ir.PredEQ, b.PtrToInt(b.Param(0), ir.I64), c64(0))
	b.If(isNull3, func() { b.Ret(errno(EBADF)) })
	ref := b.Sub(b.Load(b.FieldAddr(b.Param(0), 2)), c64(1))
	b.Store(ref, b.FieldAddr(b.Param(0), 2))
	lastRef := b.ICmp(ir.PredSLE, ref, c64(0))
	b.If(lastRef, func() {
		ops := b.Load(b.FieldAddr(b.Param(0), 3))
		hasOps := b.ICmp(ir.PredNE, b.PtrToInt(ops, ir.I64), c64(0))
		b.If(hasOps, func() {
			rel := b.Load(b.FieldAddr(ops, 2))
			hasRel := b.ICmp(ir.PredNE, b.PtrToInt(rel, ir.I64), c64(0))
			b.If(hasRel, func() {
				b.Call(rel, b.Param(0))
			})
		})
		b.Call(k.M.Func("kmem_cache_free"), b.Load(fileCache), b.Bitcast(b.Param(0), bp))
	})
	b.Ret(c64(0))

	// --- syscalls --------------------------------------------------------------

	// sys_open(icp, name_uaddr, flags).
	f := k.syscall("sys_open", SubFS)
	nameBuf := b.Alloca(ir.ArrayOf(24, ir.I8), "name")
	nb := b.Bitcast(nameBuf, bp)
	r := b.Call(k.M.Func("strncpy_from_user"), nb, b.Param(1), c64(24))
	fault := b.ICmp(ir.PredSLT, r, c64(0))
	b.If(fault, func() { b.Ret(errno(EFAULT)) })
	inop := b.Alloca(inodeP, "ino")
	b.Store(b.Call(k.M.Func("dentry_lookup"), nb), inop)
	noEnt := b.ICmp(ir.PredEQ, b.PtrToInt(b.Load(inop), ir.I64), c64(0))
	b.If(noEnt, func() {
		wantCreate := b.ICmp(ir.PredNE, b.And(b.Param(2), c64(64)), c64(0)) // O_CREAT
		b.IfElse(wantCreate, func() {
			ni := b.Call(k.M.Func("inode_alloc"), c64(InodeFile))
			bad2 := b.ICmp(ir.PredEQ, b.PtrToInt(ni, ir.I64), c64(0))
			b.If(bad2, func() { b.Ret(errno(ENOMEM)) })
			b.Call(k.M.Func("dentry_add"), nb, ni)
			b.Store(ni, inop)
		}, func() {
			b.Ret(errno(ENOENT))
		})
	})
	kind := b.Load(b.FieldAddr(b.Load(inop), 0))
	isCons := b.ICmp(ir.PredEQ, kind, c64(InodeCons))
	isBlk := b.ICmp(ir.PredEQ, kind, c64(InodeBlk))
	fops := b.Select(isCons,
		b.Bitcast(k.ConsFops, ir.PointerTo(k.FopsT)),
		b.Select(isBlk,
			b.Bitcast(k.BlkFops, ir.PointerTo(k.FopsT)),
			b.Bitcast(k.RamFops, ir.PointerTo(k.FopsT))))
	nf := b.Call(k.M.Func("file_alloc"), b.Load(inop), fops)
	badf := b.ICmp(ir.PredEQ, b.PtrToInt(nf, ir.I64), c64(0))
	b.If(badf, func() { b.Ret(errno(ENOMEM)) })
	// O_TRUNC (512): reset size.
	trunc := b.ICmp(ir.PredNE, b.And(b.Param(2), c64(512)), c64(0))
	b.If(trunc, func() {
		b.Store(c64(0), b.FieldAddr(b.Load(inop), 1))
	})
	// O_APPEND (1024): position at end.
	app := b.ICmp(ir.PredNE, b.And(b.Param(2), c64(1024)), c64(0))
	b.If(app, func() {
		b.Store(b.Load(b.FieldAddr(b.Load(inop), 1)), b.FieldAddr(nf, 1))
	})
	b.Ret(b.Call(k.M.Func("fd_install"), nf))
	_ = f

	// sys_close(icp, fd).
	k.syscall("sys_close", SubFS)
	file := b.Call(k.M.Func("fd_get"), b.Param(1))
	badfd := b.ICmp(ir.PredEQ, b.PtrToInt(file, ir.I64), c64(0))
	b.If(badfd, func() { b.Ret(errno(EBADF)) })
	cur3 := b.Load(k.Cur())
	b.Store(ir.Null(fileP), b.Index(b.FieldAddr(cur3, 5), b.Param(1)))
	b.Ret(b.Call(k.M.Func("file_close"), file))

	// sys_read(icp, fd, ubuf, n): dispatch through the fops table.  The
	// call site carries the §4.8 signature assertion, shrinking its callee
	// set to the read/write implementations.
	rf := k.syscall("sys_read", SubFS)
	file2 := b.Call(k.M.Func("fd_get"), b.Param(1))
	badfd2 := b.ICmp(ir.PredEQ, b.PtrToInt(file2, ir.I64), c64(0))
	b.If(badfd2, func() { b.Ret(errno(EBADF)) })
	ops2 := b.Load(b.FieldAddr(file2, 3))
	readFn := b.Load(b.FieldAddr(ops2, 0))
	call := b.Call(readFn, file2, b.Param(2), b.Param(3))
	b.Ret(call)
	rf.Renumber()
	rf.SigAssert = map[int]bool{call.Num(): true}
	k.Ledger.Analysis[SubFS]++

	wf := k.syscall("sys_write", SubFS)
	file3 := b.Call(k.M.Func("fd_get"), b.Param(1))
	badfd3 := b.ICmp(ir.PredEQ, b.PtrToInt(file3, ir.I64), c64(0))
	b.If(badfd3, func() { b.Ret(errno(EBADF)) })
	ops3 := b.Load(b.FieldAddr(file3, 3))
	writeFn := b.Load(b.FieldAddr(ops3, 1))
	call2 := b.Call(writeFn, file3, b.Param(2), b.Param(3))
	b.Ret(call2)
	wf.Renumber()
	wf.SigAssert = map[int]bool{call2.Num(): true}
	k.Ledger.Analysis[SubFS]++

	// sys_lseek(icp, fd, off, whence).
	k.syscall("sys_lseek", SubFS)
	file4 := b.Call(k.M.Func("fd_get"), b.Param(1))
	badfd4 := b.ICmp(ir.PredEQ, b.PtrToInt(file4, ir.I64), c64(0))
	b.If(badfd4, func() { b.Ret(errno(EBADF)) })
	posp := b.FieldAddr(file4, 1)
	inode4 := b.Load(b.FieldAddr(file4, 0))
	newOff := b.Alloca(ir.I64, "newoff")
	isSet := b.ICmp(ir.PredEQ, b.Param(3), c64(0))
	isCur := b.ICmp(ir.PredEQ, b.Param(3), c64(1))
	b.IfElse(isSet, func() {
		b.Store(b.Param(2), newOff)
	}, func() {
		b.IfElse(isCur, func() {
			b.Store(b.Add(b.Load(posp), b.Param(2)), newOff)
		}, func() {
			b.Store(b.Add(b.Load(b.FieldAddr(inode4, 1)), b.Param(2)), newOff)
		})
	})
	neg := b.ICmp(ir.PredSLT, b.Load(newOff), c64(0))
	b.If(neg, func() { b.Ret(errno(EINVAL)) })
	b.Store(b.Load(newOff), posp)
	b.Ret(b.Load(newOff))

	// sys_dup(icp, fd).
	k.syscall("sys_dup", SubFS)
	file5 := b.Call(k.M.Func("fd_get"), b.Param(1))
	badfd5 := b.ICmp(ir.PredEQ, b.PtrToInt(file5, ir.I64), c64(0))
	b.If(badfd5, func() { b.Ret(errno(EBADF)) })
	b.Store(b.Add(b.Load(b.FieldAddr(file5, 2)), c64(1)), b.FieldAddr(file5, 2))
	b.Ret(b.Call(k.M.Func("fd_install"), file5))

	// sys_unlink(icp, name_uaddr).
	k.syscall("sys_unlink", SubFS)
	nameBuf2 := b.Alloca(ir.ArrayOf(24, ir.I8), "name")
	nb2 := b.Bitcast(nameBuf2, bp)
	r2 := b.Call(k.M.Func("strncpy_from_user"), nb2, b.Param(1), c64(24))
	fault2 := b.ICmp(ir.PredSLT, r2, c64(0))
	b.If(fault2, func() { b.Ret(errno(EFAULT)) })
	b.Ret(b.Call(k.M.Func("dentry_remove"), nb2))

}

// buildFSInit emits fs_init, which wires the fops tables to driver and
// pipe implementations built after the VFS core.
func (k *K) buildFSInit() {
	b := k.B
	bp := k.BP
	var layout ir.Layout
	inodeCache := k.M.Global("inode_cache")
	fileCache := k.M.Global("file_cache")
	consInode := k.M.Global("console_inode")

	// fs_init(): create caches, wire fops tables, create /dev/console.
	k.fn("fs_init", SubFS, ir.Void, nil)
	b.Store(b.Call(k.M.Func("kmem_cache_create"), c64(layout.Size(k.InodeT))), inodeCache)
	b.Store(b.Call(k.M.Func("kmem_cache_create"), c64(layout.Size(k.FileT))), fileCache)
	rw := ir.PointerTo(k.rwSig())
	rel := ir.PointerTo(k.relSig())
	store := func(g *ir.Global, readN, writeN, relN string) {
		b.Store(b.Bitcast(k.M.Func(readN), rw), b.FieldAddr(g, 0))
		b.Store(b.Bitcast(k.M.Func(writeN), rw), b.FieldAddr(g, 1))
		b.Store(b.Bitcast(k.M.Func(relN), rel), b.FieldAddr(g, 2))
	}
	store(k.RamFops, "ramfs_read", "ramfs_write", "generic_release")
	store(k.ConsFops, "console_read", "console_write", "generic_release")
	store(k.BlkFops, "blkdev_read", "blkdev_write", "generic_release")
	store(k.PipeRFops, "pipe_read", "pipe_bad_write", "pipe_release_read")
	store(k.PipeWFops, "pipe_bad_read", "pipe_write", "pipe_release_write")
	ci := b.Call(k.M.Func("inode_alloc"), c64(InodeCons))
	b.Store(ci, consInode)
	cname := k.global("console_name", ir.ArrayOf(13, ir.I8), &ir.ConstString{S: "/dev/console"}, SubFS)
	b.Call(k.M.Func("dentry_add"), b.Bitcast(cname, bp), ci)
	bi := b.Call(k.M.Func("inode_alloc"), c64(InodeBlk))
	bname := k.global("rawdisk_name", ir.ArrayOf(13, ir.I8), &ir.ConstString{S: "/dev/rawdisk"}, SubFS)
	b.Call(k.M.Func("dentry_add"), b.Bitcast(bname, bp), bi)
	b.Ret(nil)
}

// syscall starts a syscall-handler function: i64 handler(icp, a0..a5).
func (k *K) syscall(name, subsystem string) *ir.Function {
	sig := ir.FuncOf(ir.I64, []*ir.Type{ir.I64, ir.I64, ir.I64, ir.I64, ir.I64, ir.I64, ir.I64}, false)
	f := k.B.NewFunc(name, sig, "icp", "a0", "a1", "a2", "a3", "a4", "a5")
	f.Subsystem = subsystem
	return f
}
