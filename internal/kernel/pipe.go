package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// PipeBufSize is the pipe ring-buffer capacity (Linux uses one page; a
// larger ring keeps the bandwidth benchmark from degenerating into pure
// scheduling).
const PipeBufSize = 16 * 1024

// buildPipe emits pipefs: ring-buffered pipes with blocking reads/writes
// that drive the scheduler, read/write fops, and sys_pipe.
func (k *K) buildPipe() {
	b := k.B
	bp := k.BP
	fileP := ir.PointerTo(k.FileT)
	pipeP := ir.PointerTo(k.PipeT)
	var layout ir.Layout

	pipeCache := k.global("pipe_cache", ir.PointerTo(k.CacheT), nil, SubFS)

	// pipe_alloc() -> pipe* with a vmalloc'd ring.
	k.fn("pipe_alloc", SubFS, pipeP, nil)
	raw := b.Call(k.M.Func("kmem_cache_alloc"), b.Load(pipeCache))
	isNull := b.ICmp(ir.PredEQ, b.PtrToInt(raw, ir.I64), c64(0))
	b.If(isNull, func() { b.Ret(ir.Null(pipeP)) })
	pp := b.Bitcast(raw, pipeP)
	ring := b.Call(k.M.Func("vmalloc"), c64(PipeBufSize))
	b.Store(ring, b.FieldAddr(pp, 0))
	b.Store(c64(PipeBufSize), b.FieldAddr(pp, 1))
	b.Store(c64(0), b.FieldAddr(pp, 2))
	b.Store(c64(0), b.FieldAddr(pp, 3))
	b.Store(c64(1), b.FieldAddr(pp, 4))
	b.Store(c64(1), b.FieldAddr(pp, 5))
	b.Ret(pp)

	// pipe_read(file, ubuf, n): drain available bytes; block (schedule)
	// while the pipe is empty and writers remain.
	k.fn("pipe_read", SubFS, ir.I64, []*ir.Type{fileP, ir.I64, ir.I64}, "file", "ubuf", "n")
	ino := b.Load(b.FieldAddr(b.Param(0), 0))
	pipe := b.Load(b.FieldAddr(ino, 4))
	got := b.Alloca(ir.I64, "got")
	b.Store(c64(0), got)
	b.Loop(func() {
		rp := b.Load(b.FieldAddr(pipe, 2))
		wp := b.Load(b.FieldAddr(pipe, 3))
		avail := b.Sub(wp, rp)
		hasData := b.ICmp(ir.PredUGT, avail, c64(0))
		b.IfElse(hasData, func() {
			want := b.Sub(b.Param(2), b.Load(got))
			take := b.Select(b.ICmp(ir.PredULT, want, avail), want, avail)
			// Contiguous copy up to the ring edge.
			cap0 := b.Load(b.FieldAddr(pipe, 1))
			rIdx := b.URem(rp, cap0)
			edge := b.Sub(cap0, rIdx)
			chunk := b.Select(b.ICmp(ir.PredULT, take, edge), take, edge)
			ring := b.Load(b.FieldAddr(pipe, 0))
			src := b.GEP(ring, rIdx)
			uDst := b.Add(b.Param(1), b.Load(got))
			left := b.Call(k.M.Func("__copy_to_user"), uDst, src, chunk)
			copied := b.Sub(chunk, left)
			b.Store(b.Add(rp, copied), b.FieldAddr(pipe, 2))
			b.Store(b.Add(b.Load(got), copied), got)
			done := b.ICmp(ir.PredUGE, b.Load(got), b.Param(2))
			b.If(done, func() { b.Ret(b.Load(got)) })
			fault := b.ICmp(ir.PredNE, left, c64(0))
			b.If(fault, func() { b.Ret(b.Load(got)) })
		}, func() {
			// Empty: return what we have if anything or no writers.
			some := b.ICmp(ir.PredUGT, b.Load(got), c64(0))
			b.If(some, func() { b.Ret(b.Load(got)) })
			writers := b.Load(b.FieldAddr(pipe, 5))
			eof := b.ICmp(ir.PredSLE, writers, c64(0))
			b.If(eof, func() { b.Ret(c64(0)) })
			// Block: let the writer run.
			b.Call(k.M.Func("schedule"))
		})
	})
	b.Seal()

	// pipe_write(file, ubuf, n): fill the ring; block while full and a
	// reader remains.
	k.fn("pipe_write", SubFS, ir.I64, []*ir.Type{fileP, ir.I64, ir.I64}, "file", "ubuf", "n")
	ino2 := b.Load(b.FieldAddr(b.Param(0), 0))
	pipe2 := b.Load(b.FieldAddr(ino2, 4))
	put := b.Alloca(ir.I64, "put")
	b.Store(c64(0), put)
	b.Loop(func() {
		readers := b.Load(b.FieldAddr(pipe2, 4))
		gone := b.ICmp(ir.PredSLE, readers, c64(0))
		b.If(gone, func() { b.Ret(errno(EINVAL)) }) // EPIPE stand-in
		rp := b.Load(b.FieldAddr(pipe2, 2))
		wp := b.Load(b.FieldAddr(pipe2, 3))
		cap0 := b.Load(b.FieldAddr(pipe2, 1))
		space := b.Sub(cap0, b.Sub(wp, rp))
		hasSpace := b.ICmp(ir.PredUGT, space, c64(0))
		b.IfElse(hasSpace, func() {
			want := b.Sub(b.Param(2), b.Load(put))
			take := b.Select(b.ICmp(ir.PredULT, want, space), want, space)
			wIdx := b.URem(wp, cap0)
			edge := b.Sub(cap0, wIdx)
			chunk := b.Select(b.ICmp(ir.PredULT, take, edge), take, edge)
			ring := b.Load(b.FieldAddr(pipe2, 0))
			dst := b.GEP(ring, wIdx)
			uSrc := b.Add(b.Param(1), b.Load(put))
			left := b.Call(k.M.Func("__copy_from_user"), dst, uSrc, chunk)
			copied := b.Sub(chunk, left)
			b.Store(b.Add(wp, copied), b.FieldAddr(pipe2, 3))
			b.Store(b.Add(b.Load(put), copied), put)
			done := b.ICmp(ir.PredUGE, b.Load(put), b.Param(2))
			b.If(done, func() { b.Ret(b.Load(put)) })
			fault := b.ICmp(ir.PredNE, left, c64(0))
			b.If(fault, func() { b.Ret(b.Load(put)) })
		}, func() {
			b.Call(k.M.Func("schedule"))
		})
	})
	b.Seal()

	// Wrong-direction operations.
	k.fn("pipe_bad_read", SubFS, ir.I64, []*ir.Type{fileP, ir.I64, ir.I64}, "file", "ubuf", "n")
	b.Ret(errno(EBADF))
	k.fn("pipe_bad_write", SubFS, ir.I64, []*ir.Type{fileP, ir.I64, ir.I64}, "file", "ubuf", "n")
	b.Ret(errno(EBADF))

	// pipe_release_read / pipe_release_write: drop endpoint counts.
	k.fn("pipe_release_read", SubFS, ir.I64, []*ir.Type{fileP}, "file")
	inoR := b.Load(b.FieldAddr(b.Param(0), 0))
	pR := b.Load(b.FieldAddr(inoR, 4))
	b.Store(b.Sub(b.Load(b.FieldAddr(pR, 4)), c64(1)), b.FieldAddr(pR, 4))
	b.Ret(c64(0))

	k.fn("pipe_release_write", SubFS, ir.I64, []*ir.Type{fileP}, "file")
	inoW := b.Load(b.FieldAddr(b.Param(0), 0))
	pW := b.Load(b.FieldAddr(inoW, 4))
	b.Store(b.Sub(b.Load(b.FieldAddr(pW, 5)), c64(1)), b.FieldAddr(pW, 5))
	b.Ret(c64(0))

	// sys_pipe(icp, fds_uaddr): create both endpoints, write the two fds
	// to user space.
	k.syscall("sys_pipe", SubFS)
	pipeNew := b.Call(k.M.Func("pipe_alloc"))
	bad := b.ICmp(ir.PredEQ, b.PtrToInt(pipeNew, ir.I64), c64(0))
	b.If(bad, func() { b.Ret(errno(ENOMEM)) })
	inoN := b.Call(k.M.Func("inode_alloc"), c64(InodePipe))
	b.Store(pipeNew, b.FieldAddr(inoN, 4))
	rfile := b.Call(k.M.Func("file_alloc"), inoN, b.Bitcast(k.PipeRFops, ir.PointerTo(k.FopsT)))
	wfile := b.Call(k.M.Func("file_alloc"), inoN, b.Bitcast(k.PipeWFops, ir.PointerTo(k.FopsT)))
	rfd := b.Call(k.M.Func("fd_install"), rfile)
	wfd := b.Call(k.M.Func("fd_install"), wfile)
	fdbuf := b.Alloca(ir.ArrayOf(2, ir.I64), "fds")
	b.Store(rfd, b.Index(fdbuf, c32(0)))
	b.Store(wfd, b.Index(fdbuf, c32(1)))
	left3 := b.Call(k.M.Func("__copy_to_user"), b.Param(1), b.Bitcast(fdbuf, bp), c64(16))
	fault3 := b.ICmp(ir.PredNE, left3, c64(0))
	b.If(fault3, func() { b.Ret(errno(EFAULT)) })
	b.Ret(c64(0))

	// pipe_init(): the pipe object cache.
	k.fn("pipe_init", SubFS, ir.Void, nil)
	b.Store(b.Call(k.M.Func("kmem_cache_create"), c64(layout.Size(k.PipeT))), pipeCache)
	b.Ret(nil)
	_ = svaops.BytePtr
}
