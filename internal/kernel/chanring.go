package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// Inter-domain channel driver (net/drivers): the guest half of
// hw.ChanPort — one queue pair (ring 0 Tx toward the peer domain, ring 1
// Rx) in statically-sized kernel globals, driven from the boot CPU.
//
// Same trust discipline as the NIC driver: a buffer address coming back
// through a descriptor is re-derived as an offset into chanring_bufs and
// re-indexed through the bounds-checked Index, so a corrupted descriptor
// lands on a safety violation, not a wild pointer.
//
// The distinguishable errnos surface here: sys_chan_send propagates the
// SVM's -EHOSTDOWN when the peer domain is dead or rebooting (the
// doorbell fails closed without blocking), and returns -EAGAIN when the
// Tx ring is momentarily full; sys_chan_recv returns -EAGAIN when
// nothing has arrived.
const (
	ChanRingSlots = 16 // descriptors per ring (power of two)
	ChanFrameSize = 64 // bytes per message buffer
	ChanRingBytes = 16 + ChanRingSlots*16
)

func (k *K) buildChanRing() {
	b := k.B

	area := k.global("chanring_area", ir.ArrayOf(2*ChanRingBytes, ir.I8), nil, SubNetDrv)
	bufs := k.global("chanring_bufs", ir.ArrayOf(2*ChanRingSlots*ChanFrameSize, ir.I8), nil, SubNetDrv)
	txSeqG := k.global("chanring_txseq", ir.I64, c64(0), SubNetDrv)
	seenG := k.global("chanring_seen", ir.I64, c64(0), SubNetDrv)
	chanIntrs := k.global("chan_intrs", ir.I64, c64(0), SubNetDrv)

	// chan_isr(vec, icp): channel completion interrupt — count only; the
	// syscalls poll the rings.
	k.fn("chan_isr", SubArchDep, ir.Void, []*ir.Type{ir.I64, ir.I64}, "vec", "icp")
	b.AtomicRMW(ir.RMWAdd, chanIntrs, c64(1))
	b.Ret(nil)

	// chanring_init(): attach the queue pair and post every Rx buffer.
	// Fully unrolled so every ring base and buffer offset is a constant
	// the verifier can see.
	k.fn("chanring_init", SubNetDrv, ir.Void, nil)
	for r := 0; r < 2; r++ {
		base := b.Index(area, c64(int64(r*ChanRingBytes)))
		k.op(svaops.ChanAttach, c64(int64(r)), base, c64(ChanRingSlots))
	}
	for i := 0; i < ChanRingSlots; i++ {
		off := int64((ChanRingSlots + i) * ChanFrameSize)
		k.op(svaops.ChanPost, c64(1), b.Index(bufs, c64(off)), c64(ChanFrameSize))
	}
	b.Ret(nil)

	// sys_chan_send(icp, value): stamp value (+ sequence tag) into the
	// next Tx buffer, post it, ring the doorbell.  Returns 0, -EAGAIN
	// (ring full), or the doorbell's errno — -EHOSTDOWN when the peer is
	// down.
	k.syscall("sys_chan_send", SubNetDrv)
	val := b.Param(1)
	seq := b.Load(txSeqG)
	slot := b.And(seq, c64(ChanRingSlots-1))
	bufP := b.Index(bufs, b.Mul(slot, c64(ChanFrameSize)))
	b.Store(val, b.Bitcast(bufP, ir.PointerTo(ir.I64)))
	b.Store(seq, b.Bitcast(b.GEP(bufP, c64(8)), ir.PointerTo(ir.I64)))
	ret := b.Alloca(ir.I64, "ret")
	rc := k.op(svaops.ChanPost, c64(0), bufP, c64(16))
	b.If(b.ICmp(ir.PredNE, rc, c64(0)), func() {
		b.Store(errno(EAGAIN), ret)
	})
	b.If(b.ICmp(ir.PredEQ, rc, c64(0)), func() {
		b.Store(b.Add(seq, c64(1)), txSeqG)
		drc := k.op(svaops.ChanDoorbell, c64(0))
		isErr := b.ICmp(ir.PredSLT, drc, c64(0))
		b.If(isErr, func() { b.Store(drc, ret) })
		b.If(b.ICmp(ir.PredSGE, drc, c64(0)), func() { b.Store(c64(0), ret) })
	})
	b.Ret(b.Load(ret))

	// sys_chan_recv(icp): pull arrivals into the posted Rx descriptors,
	// return the next message's value (reposting its buffer) or -EAGAIN.
	k.syscall("sys_chan_recv", SubNetDrv)
	k.op(svaops.ChanDoorbell, c64(1))
	cons := k.op(svaops.ChanReap, c64(1))
	seen := b.Load(seenG)
	ret2 := b.Alloca(ir.I64, "ret")
	b.Store(errno(EAGAIN), ret2)
	b.If(b.ICmp(ir.PredULT, seen, cons), func() {
		rslot := b.And(seen, c64(ChanRingSlots-1))
		dOff := b.Add(b.Add(c64(ChanRingBytes), c64(16)), b.Mul(rslot, c64(16)))
		st := b.ZExt(b.Load(b.Bitcast(b.Index(area, b.Add(dOff, c64(12))), ir.PointerTo(ir.I32))), ir.I64)
		addr := b.Load(b.Bitcast(b.Index(area, dOff), ir.PointerTo(ir.I64)))
		b.If(b.ICmp(ir.PredEQ, st, c64(1)), func() {
			// Re-derive the buffer from the untrusted descriptor address.
			frameP := b.Index(bufs, b.Sub(addr, b.PtrToInt(bufs, ir.I64)))
			b.Store(b.Load(b.Bitcast(frameP, ir.PointerTo(ir.I64))), ret2)
			k.op(svaops.ChanPost, c64(1), frameP, c64(ChanFrameSize))
		})
		b.Store(b.Add(seen, c64(1)), seenG)
	})
	b.Ret(b.Load(ret2))
}
