package kernel

import (
	"sva/internal/ir"
	"sva/internal/svaops"
)

// buildSignal emits signal handling.  Dispatch follows the paper's ported
// design: the kernel saves dispatch state on the kernel side and arranges
// the user handler call through llva.ipush.function on the interrupt
// context (§6.1: the signal-dispatch code was changed to keep state off
// the user stack, because SVA-OS provides no way to let the kernel trust
// user-modifiable saved state).
func (k *K) buildSignal() {
	b := k.B

	// deliver_signals(icp): push a handler call for every pending signal
	// of the current task onto the interrupted context.
	k.fn("deliver_signals", SubCore, ir.Void, []*ir.Type{ir.I64}, "icp")
	me := b.Load(k.Cur())
	pend := b.FieldAddr(me, 8)
	b.For("sig", c64(0), c64(NumSigs), c64(1), func(sig ir.Value) {
		mask := b.Shl(c64(1), sig)
		setv := b.And(b.Load(pend), mask)
		isSet := b.ICmp(ir.PredNE, setv, c64(0))
		b.If(isSet, func() {
			b.Store(b.Xor(b.Load(pend), mask), pend)
			h := b.Load(b.Index(b.FieldAddr(me, 7), sig))
			hasH := b.ICmp(ir.PredNE, h, c64(0))
			b.If(hasH, func() {
				k.op(svaops.IPushFunction, b.Param(0), b.IntToPtr(h, k.BP), sig, c64(0))
			})
		})
	})
	b.Ret(nil)

	// sys_sigaction(icp, sig, handler): install a handler, return the old
	// one.
	k.syscall("sys_sigaction", SubCore)
	badSig := b.Or(b.ZExt(b.ICmp(ir.PredSLT, b.Param(1), c64(1)), ir.I64),
		b.ZExt(b.ICmp(ir.PredSGE, b.Param(1), c64(NumSigs)), ir.I64))
	isBad := b.ICmp(ir.PredNE, badSig, c64(0))
	b.If(isBad, func() { b.Ret(errno(EINVAL)) })
	me2 := b.Load(k.Cur())
	slot := b.Index(b.FieldAddr(me2, 7), b.Param(1))
	old := b.Load(slot)
	b.Store(b.Param(2), slot)
	b.Ret(old)

	// sys_kill(icp, pid, sig): post a signal.  Signals to the current
	// task deliver on this trap's return; signals to others deliver at
	// their next trap boundary.
	k.syscall("sys_kill", SubCore)
	badSig2 := b.Or(b.ZExt(b.ICmp(ir.PredSLT, b.Param(2), c64(1)), ir.I64),
		b.ZExt(b.ICmp(ir.PredSGE, b.Param(2), c64(NumSigs)), ir.I64))
	isBad2 := b.ICmp(ir.PredNE, badSig2, c64(0))
	b.If(isBad2, func() { b.Ret(errno(EINVAL)) })
	t := b.Call(k.M.Func("find_task"), b.Param(1))
	noT := b.ICmp(ir.PredEQ, b.PtrToInt(t, ir.I64), c64(0))
	b.If(noT, func() { b.Ret(errno(ESRCH)) })
	pend2 := b.FieldAddr(t, 8)
	b.Store(b.Or(b.Load(pend2), b.Shl(c64(1), b.Param(2))), pend2)
	isSelf := b.ICmp(ir.PredEQ, b.PtrToInt(t, ir.I64), b.PtrToInt(b.Load(k.Cur()), ir.I64))
	b.If(isSelf, func() {
		b.Call(k.M.Func("deliver_signals"), b.Param(0))
	})
	b.Ret(c64(0))
}
