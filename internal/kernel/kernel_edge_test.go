package kernel

import (
	"testing"

	"sva/internal/abi"
	"sva/internal/hw"
	"sva/internal/ir"
	"sva/internal/svaops"
	"sva/internal/userland"
	"sva/internal/vm"
)

// edgeModule builds programs probing error paths and corner cases.
func edgeModule() *userland.U {
	u := userland.New("edge")
	b := u.B
	missing := u.StrGlobal("s_missing", "/no/such/file")
	fname := u.StrGlobal("s_edge", "/tmp/edge")

	// open_enoent: opening a missing file without O_CREAT.
	u.Prog("open_enoent")
	b.Ret(u.Open(missing(), 0))

	// bad_fd: reading from an fd that was never opened.
	u.Prog("bad_fd")
	buf := b.Alloca(ir.ArrayOf(8, ir.I8), "b")
	b.Ret(u.Read(ir.I64c(11), u.Addr(buf), ir.I64c(1)))

	// fd_exhaust: open until the per-task table fills; returns the error
	// (closing everything again — the boot task's table is shared across
	// the battery).
	u.Prog("fd_exhaust")
	last := b.Alloca(ir.I64, "last")
	b.Store(ir.I64c(0), last)
	b.For("i", ir.I64c(0), ir.I64c(NumFiles+2), ir.I64c(1), func(i ir.Value) {
		fd := u.Open(fname(), 64)
		bad := b.ICmp(ir.PredSLT, fd, ir.I64c(0))
		b.If(bad, func() {
			b.Store(fd, last)
			b.Break()
		})
	})
	b.For("fd", ir.I64c(0), ir.I64c(NumFiles), ir.I64c(1), func(fd ir.Value) {
		u.Close(fd)
	})
	b.Ret(b.Load(last))

	// wait_echild: waitpid with no children.
	u.Prog("wait_echild")
	b.Ret(u.Waitpid(ir.I64c(-1)))

	// kill_esrch: signal a nonexistent pid.
	u.Prog("kill_esrch")
	b.Ret(u.Kill(ir.I64c(55), ir.I64c(10)))

	// lseek_einval: negative resulting offset.
	u.Prog("lseek_einval")
	fd := u.Open(fname(), 64)
	b.Ret(u.Lseek(fd, ir.I64c(-5), ir.I64c(0)))

	// pipe_eof: close the write end; a read must return 0.
	u.Prog("pipe_eof")
	fds := b.Alloca(ir.ArrayOf(2, ir.I64), "fds")
	u.Pipe(u.Addr(fds))
	rfd := b.Load(b.Index(fds, ir.I32c(0)))
	wfd := b.Load(b.Index(fds, ir.I32c(1)))
	u.Close(wfd)
	rb := b.Alloca(ir.ArrayOf(8, ir.I8), "rb")
	b.Ret(u.Read(rfd, u.Addr(rb), ir.I64c(8)))

	// pipe_epipe: close the read end; a write must fail.
	u.Prog("pipe_epipe")
	fds2 := b.Alloca(ir.ArrayOf(2, ir.I64), "fds")
	u.Pipe(u.Addr(fds2))
	rfd2 := b.Load(b.Index(fds2, ir.I32c(0)))
	wfd2 := b.Load(b.Index(fds2, ir.I32c(1)))
	u.Close(rfd2)
	wb := b.Alloca(ir.ArrayOf(8, ir.I8), "wb")
	b.Ret(u.Write(wfd2, u.Addr(wb), ir.I64c(8)))

	// sbrk_enomem: growing past the arena.
	u.Prog("sbrk_enomem")
	u.Sbrk(ir.I64c(0)) // force arena creation
	b.Ret(u.Sbrk(ir.I64c(UserBrkArena + 4096)))

	// console_echo: read injected console input back through the VFS.
	console := u.StrGlobal("s_cons2", "/dev/console")
	u.Prog("console_echo")
	cfd := u.Open(console(), 0)
	cb := b.Alloca(ir.ArrayOf(16, ir.I8), "cb")
	n := u.Read(cfd, u.Addr(cb), ir.I64c(16))
	u.Close(cfd)
	first := b.Load(b.Index(cb, ir.I32c(0)))
	b.Ret(b.Add(b.Mul(n, ir.I64c(1000)), b.ZExt(first, ir.I64)))

	// dup_shares_offset: dup'd fds share the file position.
	u.Prog("dup_shares_offset")
	dfd := u.Open(fname(), 64|512)
	area := u.Sbrk(ir.I64c(4096))
	u.Write(dfd, area, ir.I64c(100))
	d2 := u.Trap(abi.SysDup, dfd)
	pos := u.Lseek(d2, ir.I64c(0), ir.I64c(1)) // SEEK_CUR through the dup
	u.Close(dfd)
	u.Close(d2)
	b.Ret(pos)

	u.SealAll()
	return u
}

func TestErrorPaths(t *testing.T) {
	for _, cfg := range []vm.Config{vm.ConfigNative, vm.ConfigSafe} {
		t.Run(cfg.String(), func(t *testing.T) {
			u := edgeModule()
			sys, err := NewSystem(cfg, true, u.M)
			if err != nil {
				t.Fatal(err)
			}
			cases := []struct {
				prog string
				arg  uint64
				want int64
			}{
				{"open_enoent", 0, -int64(ENOENT)},
				{"bad_fd", 0, -int64(EBADF)},
				{"fd_exhaust", 0, -int64(EMFILE)},
				{"wait_echild", 0, -int64(ECHILD)},
				{"kill_esrch", 0, -int64(ESRCH)},
				{"lseek_einval", 0, -int64(EINVAL)},
				{"pipe_eof", 0, 0},
				{"pipe_epipe", 0, -int64(EINVAL)},
				{"sbrk_enomem", 0, -int64(ENOMEM)},
				{"dup_shares_offset", 0, 100},
			}
			for _, c := range cases {
				got, err := sys.RunUser(u.M.Func(c.prog), c.arg, 0)
				if err != nil {
					t.Fatalf("%s: %v", c.prog, err)
				}
				if int64(got) != c.want {
					t.Errorf("%s = %d, want %d", c.prog, int64(got), c.want)
				}
			}
			if cfg == vm.ConfigSafe && len(sys.VM.Violations) != 0 {
				t.Errorf("error paths raised violations: %v", sys.VM.Violations[0])
			}
		})
	}
}

func TestConsoleInputThroughVFS(t *testing.T) {
	u := edgeModule()
	sys, err := NewSystem(vm.ConfigSafe, true, u.M)
	if err != nil {
		t.Fatal(err)
	}
	sys.VM.Mach.Console.InjectInput([]byte("Zx"))
	got, err := sys.RunUser(u.M.Func("console_echo"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 bytes read, first is 'Z'.
	if got != 2000+'Z' {
		t.Errorf("console_echo = %d, want %d", got, 2000+'Z')
	}
}

// TestDynamicModuleLoad loads a device-driver module into a *booted*
// system (paper §2: "kernel modules and device drivers can be dynamically
// loaded and unloaded"), runs its init to register a new syscall, and
// calls it from user space.  The module is "unknown" code — never seen by
// the safety compiler — which the design explicitly permits.
func TestDynamicModuleLoad(t *testing.T) {
	u := edgeModule()
	sys, err := NewSystem(vm.ConfigSafe, true, u.M)
	if err != nil {
		t.Fatal(err)
	}

	// The module, built (or shipped) after boot.
	drv := ir.NewModule("extradrv")
	db := ir.NewBuilder(drv)
	hsig := ir.FuncOf(ir.I64, []*ir.Type{ir.I64, ir.I64, ir.I64, ir.I64, ir.I64, ir.I64, ir.I64}, false)
	db.NewFunc("sys_triple", hsig, "icp", "a0", "a1", "a2", "a3", "a4", "a5")
	db.Ret(db.Mul(db.Param(1), ir.I64c(3)))
	db.NewFunc("mod_init", ir.FuncOf(ir.I64, nil, false))
	db.Call(svaops.Get(drv, svaops.RegisterSyscall), ir.I64c(230),
		db.Bitcast(drv.Func("sys_triple"), svaops.BytePtr))
	db.Ret(ir.I64c(0))
	db.Seal()
	if errs := ir.VerifyModule(drv); len(errs) != 0 {
		t.Fatalf("driver module: %v", errs[0])
	}

	// Load and initialize in kernel context (modprobe).
	if err := sys.VM.LoadModule(drv, false); err != nil {
		t.Fatal(err)
	}
	top, _ := sys.VM.AllocKernelStack(KStackSize)
	ex, err := sys.VM.NewExec(drv.Func("mod_init"), nil, top, hw.PrivKernel)
	if err != nil {
		t.Fatal(err)
	}
	sys.VM.SetExec(ex)
	if _, err := sys.VM.Run(); err != nil {
		t.Fatalf("mod_init: %v", err)
	}

	// A user program shipped later uses the new syscall.
	up := userland.New("moduser")
	up.Prog("use_triple")
	r := up.Trap(230, up.B.Param(0))
	up.B.Ret(r)
	up.SealAll()
	if err := sys.VM.LoadModule(up.M, true); err != nil {
		t.Fatal(err)
	}
	got, err := sys.RunUser(up.M.Func("use_triple"), 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("use_triple(14) = %d, want 42", got)
	}

	// "Unload": a replacement module takes over the number (the kernel
	// re-registers, as on driver reload).
	drv2 := ir.NewModule("extradrv2")
	db2 := ir.NewBuilder(drv2)
	db2.NewFunc("sys_quad", hsig, "icp", "a0", "a1", "a2", "a3", "a4", "a5")
	db2.Ret(db2.Mul(db2.Param(1), ir.I64c(4)))
	db2.NewFunc("mod2_init", ir.FuncOf(ir.I64, nil, false))
	db2.Call(svaops.Get(drv2, svaops.RegisterSyscall), ir.I64c(230),
		db2.Bitcast(drv2.Func("sys_quad"), svaops.BytePtr))
	db2.Ret(ir.I64c(0))
	db2.Seal()
	if err := sys.VM.LoadModule(drv2, false); err != nil {
		t.Fatal(err)
	}
	ex2, _ := sys.VM.NewExec(drv2.Func("mod2_init"), nil, top, hw.PrivKernel)
	sys.VM.SetExec(ex2)
	if _, err := sys.VM.Run(); err != nil {
		t.Fatal(err)
	}
	got, err = sys.RunUser(up.M.Func("use_triple"), 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 56 {
		t.Errorf("after reload, syscall 230 (14) = %d, want 56", got)
	}
}

// TestDeterministicCycles: the same workload on the same configuration
// costs exactly the same number of virtual cycles, run to run — the basis
// of the evaluation's reproducibility.
func TestDeterministicCycles(t *testing.T) {
	measure := func() uint64 {
		u := userland.BuildTestPrograms()
		sys, err := NewSystem(vm.ConfigSafe, true, u.M)
		if err != nil {
			t.Fatal(err)
		}
		c0 := sys.VM.Mach.CPU.Cycles
		if _, err := sys.RunUser(u.M.Func("pipeecho"), 30000, 0); err != nil {
			t.Fatal(err)
		}
		return sys.VM.Mach.CPU.Cycles - c0
	}
	a, b := measure(), measure()
	if a != b {
		t.Errorf("cycle counts differ across runs: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("no cycles charged")
	}
}

// TestClockTicksDuringUserWork: the timer interrupt is delivered
// asynchronously while user code runs, and the kernel's tick handler
// advances jiffies — interrupt contexts work outside syscalls too.
func TestClockTicksDuringUserWork(t *testing.T) {
	u := userland.New("spinner")
	b := u.B
	u.Prog("spin")
	acc := b.Alloca(ir.I64, "acc")
	b.Store(ir.I64c(1), acc)
	b.For("i", ir.I64c(0), b.Param(0), ir.I64c(1), func(i ir.Value) {
		b.Store(b.Add(b.Load(acc), i), acc)
	})
	b.Ret(b.Load(acc))
	u.SealAll()
	sys, err := NewSystem(vm.ConfigSafe, true, u.M)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunUser(u.M.Func("spin"), 100_000, 0); err != nil {
		t.Fatal(err)
	}
	j, err := sys.PeekGlobal("jiffies", 0)
	if err != nil {
		t.Fatal(err)
	}
	if j < 5 {
		t.Errorf("jiffies = %d; timer interrupts not delivered during user work", j)
	}
	if sys.VM.Mach.Timer.Ticks < 5 {
		t.Errorf("hardware ticks = %d", sys.VM.Mach.Timer.Ticks)
	}
}

// TestBlockDeviceFile: /dev/rawdisk round-trips data through the simulated
// disk, and the bytes are visible on the raw device.
func TestBlockDeviceFile(t *testing.T) {
	u := userland.New("blk")
	b := u.B
	disk := u.StrGlobal("s_disk", "/dev/rawdisk")
	u.Prog("disk_rw")
	fd := u.Open(disk(), 0)
	bad := b.ICmp(ir.PredSLT, fd, ir.I64c(0))
	b.If(bad, func() { b.Ret(fd) })
	area := u.Sbrk(ir.I64c(8192))
	// Pattern 1300 bytes (crosses sector boundaries), write at offset 700.
	b.For("i", ir.I64c(0), ir.I64c(1300), ir.I64c(1), func(i ir.Value) {
		p := b.IntToPtr(b.Add(area, i), ir.PointerTo(ir.I8))
		b.Store(b.Trunc(b.And(b.Add(i, ir.I64c(7)), ir.I64c(0xFF)), ir.I8), p)
	})
	u.Lseek(fd, ir.I64c(700), ir.I64c(0))
	w := u.Write(fd, area, ir.I64c(1300))
	short := b.ICmp(ir.PredNE, w, ir.I64c(1300))
	b.If(short, func() { b.Ret(ir.I64c(-100)) })
	// Read back and compare.
	u.Lseek(fd, ir.I64c(700), ir.I64c(0))
	rarea := b.Add(area, ir.I64c(4096))
	r := u.Read(fd, rarea, ir.I64c(1300))
	short2 := b.ICmp(ir.PredNE, r, ir.I64c(1300))
	b.If(short2, func() { b.Ret(ir.I64c(-101)) })
	b.For("i", ir.I64c(0), ir.I64c(1300), ir.I64c(1), func(i ir.Value) {
		a := b.Load(b.IntToPtr(b.Add(area, i), ir.PointerTo(ir.I8)))
		c := b.Load(b.IntToPtr(b.Add(rarea, i), ir.PointerTo(ir.I8)))
		diff := b.ICmp(ir.PredNE, a, c)
		b.If(diff, func() { b.Ret(ir.I64c(-102)) })
	})
	u.Close(fd)
	b.Ret(ir.I64c(1300))
	u.SealAll()

	for _, cfg := range []vm.Config{vm.ConfigNative, vm.ConfigSafe} {
		sys, err := NewSystem(cfg, true, u.M)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.RunUser(u.M.Func("disk_rw"), 0, 0)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if int64(got) != 1300 {
			t.Fatalf("%v: disk_rw = %d", cfg, int64(got))
		}
		// The bytes landed on the simulated hardware.
		sect := make([]byte, hw.SectorSize)
		if err := sys.VM.Mach.Disk.ReadSector(1, sect); err != nil {
			t.Fatal(err)
		}
		// Offset 700 = sector 1, offset 188; pattern value (i+7)&0xFF at i=0.
		if sect[188] != 7 {
			t.Errorf("%v: disk sector byte = %d, want 7", cfg, sect[188])
		}
		if sys.VM.Mach.Disk.Writes == 0 {
			t.Errorf("%v: no physical disk writes recorded", cfg)
		}
	}
}

// TestManyChildren stresses the scheduler and pid recycling: rounds of
// multiple concurrent children, each exiting with a distinct code, all
// reaped in order.
func TestManyChildren(t *testing.T) {
	u := userland.New("many")
	b := u.B
	u.Prog("spawn_many")
	// Each round: fork 5 children; child i exits immediately; parent reaps
	// all and accumulates reaped-pid count.
	count := b.Alloca(ir.I64, "count")
	b.Store(ir.I64c(0), count)
	b.For("round", ir.I64c(0), b.Param(0), ir.I64c(1), func(round ir.Value) {
		pids := b.Alloca(ir.ArrayOf(5, ir.I64), "pids")
		b.For("i", ir.I64c(0), ir.I64c(5), ir.I64c(1), func(i ir.Value) {
			pid := u.Fork()
			isC := b.ICmp(ir.PredEQ, pid, ir.I64c(0))
			b.If(isC, func() { u.Exit(i) })
			errF := b.ICmp(ir.PredSLT, pid, ir.I64c(0))
			b.If(errF, func() { b.Ret(pid) })
			b.Store(pid, b.Index(pids, i))
		})
		b.For("i", ir.I64c(0), ir.I64c(5), ir.I64c(1), func(i ir.Value) {
			want := b.Load(b.Index(pids, i))
			got := u.Waitpid(want)
			match := b.ICmp(ir.PredEQ, got, want)
			b.If(match, func() {
				b.Store(b.Add(b.Load(count), ir.I64c(1)), count)
			})
		})
	})
	b.Ret(b.Load(count))
	u.SealAll()

	for _, cfg := range []vm.Config{vm.ConfigNative, vm.ConfigSafe} {
		sys, err := NewSystem(cfg, true, u.M)
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 30 // 150 forks: pids and stacks must recycle
		got, err := sys.RunUser(u.M.Func("spawn_many"), rounds, 2_000_000_000)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if got != 5*rounds {
			t.Errorf("%v: reaped %d of %d children", cfg, got, 5*rounds)
		}
		if cfg == vm.ConfigSafe && len(sys.VM.Violations) != 0 {
			t.Errorf("violations: %v", sys.VM.Violations[0])
		}
	}
}

// TestFilePersistenceAndAppend: ramfs contents persist across open/close,
// and O_APPEND positions at end-of-file.
func TestFilePersistenceAndAppend(t *testing.T) {
	u := userland.New("persist")
	b := u.B
	fname := u.StrGlobal("s_p", "/tmp/persist")
	u.Prog("persist")
	area := u.Sbrk(ir.I64c(4096))
	b.Store(ir.I8c('A'), b.IntToPtr(area, ir.PointerTo(ir.I8)))
	fd1 := u.Open(fname(), 64|512)
	u.Write(fd1, area, ir.I64c(10))
	u.Close(fd1)
	// Reopen with O_APPEND and add ten more bytes.
	b.Store(ir.I8c('B'), b.IntToPtr(area, ir.PointerTo(ir.I8)))
	fd2 := u.Open(fname(), 1024)
	u.Write(fd2, area, ir.I64c(10))
	u.Close(fd2)
	// Read everything back.
	fd3 := u.Open(fname(), 0)
	rb := b.Add(area, ir.I64c(1024))
	n := u.Read(fd3, rb, ir.I64c(64))
	u.Close(fd3)
	first := b.Load(b.IntToPtr(rb, ir.PointerTo(ir.I8)))
	eleventh := b.Load(b.IntToPtr(b.Add(rb, ir.I64c(10)), ir.PointerTo(ir.I8)))
	// n*10000 + first*100 + eleventh
	b.Ret(b.Add(b.Mul(n, ir.I64c(10000)),
		b.Add(b.Mul(b.ZExt(first, ir.I64), ir.I64c(100)), b.ZExt(eleventh, ir.I64))))
	u.SealAll()

	sys, err := NewSystem(vm.ConfigSafe, true, u.M)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.RunUser(u.M.Func("persist"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(20*10000 + 'A'*100 + 'B')
	if got != want {
		t.Errorf("persist = %d, want %d (20 bytes, 'A' then 'B' at offset 10)", got, want)
	}
}

// TestUserKernelIsolation: a user program dereferencing kernel memory is
// stopped by the hardware privilege check, not by the safety checks — the
// baseline isolation every configuration provides.
func TestUserKernelIsolation(t *testing.T) {
	u := userland.New("evil")
	b := u.B
	u.Prog("read_kernel")
	// 0x0010_0000 is the kernel globals base.
	p := b.IntToPtr(ir.I64c(0x0010_0000), ir.PointerTo(ir.I64))
	b.Ret(b.Load(p))
	u.SealAll()
	for _, cfg := range []vm.Config{vm.ConfigNative, vm.ConfigSafe} {
		sys, err := NewSystem(cfg, true, u.M)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sys.RunUser(u.M.Func("read_kernel"), 0, 0)
		if err == nil {
			t.Fatalf("%v: user read of kernel memory succeeded", cfg)
		}
	}
}
