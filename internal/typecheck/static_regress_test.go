package typecheck

import (
	"testing"

	"sva/internal/ir"
)

// TestGEPStaticallySafeRejectsBadFieldIndex: the verifier's twin of the
// compiler's exemption rule must treat a malformed constant struct-field
// index as unprovable instead of indexing the field list out of range.
func TestGEPStaticallySafeRejectsBadFieldIndex(t *testing.T) {
	st := ir.StructOf(ir.I64, ir.I64)
	m := ir.NewModule("regress")
	b := ir.NewBuilder(m)
	b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(st)}, false), "p")
	base := b.Param(0)
	b.Ret(nil)
	b.Seal()

	for _, fi := range []ir.Value{
		ir.NewInt(ir.I32, -1),
		ir.NewInt(ir.I32, 2),
		ir.NewInt(ir.I64, 1<<40),
	} {
		in := &ir.Instr{
			Op:   ir.OpGEP,
			Args: []ir.Value{base, ir.I32c(0), fi},
		}
		if gepStaticallySafe(in) {
			t.Errorf("GEP with field index %s judged statically safe", fi.Ident())
		}
	}
	ok := &ir.Instr{
		Op:   ir.OpGEP,
		Args: []ir.Value{base, ir.I32c(0), ir.I32c(1)},
	}
	if !gepStaticallySafe(ok) {
		t.Error("constant in-range field address not judged safe")
	}
}

// TestIndexBoundedSExt: the verifier accepts the sign-extended masked
// index exactly when the compiler's rule does — keeping the two sides in
// lockstep so valid compiler output is never rejected.
func TestIndexBoundedSExt(t *testing.T) {
	m := ir.NewModule("regress")
	b := ir.NewBuilder(m)
	b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.I32}, false), "x")
	masked := b.And(b.Param(0), ir.I32c(3))
	sx := b.SExt(masked, ir.I64)
	unmasked := b.SExt(b.Param(0), ir.I64)
	b.Ret(nil)
	b.Seal()

	if !indexBounded(sx, 4) {
		t.Error("sext(x & 3) not bounded by 4")
	}
	if indexBounded(sx, 3) {
		t.Error("sext(x & 3) wrongly bounded by 3")
	}
	if indexBounded(unmasked, 4) {
		t.Error("bare sext(x) wrongly judged bounded")
	}
}
