// Package typecheck implements the SVA bytecode verifier of paper §5: a
// simple, intraprocedural type checker over the metapool annotations the
// safety-checking compiler attached to pointer values.  Because the typing
// rules need only local information (the operands of each instruction), the
// checker is small and fast — and it, not the complex interprocedural
// compiler, is the component inside the trusted computing base.
//
// The checker validates four properties, matching the §5 bug-injection
// experiment:
//
//  1. aliasing consistency — derived pointers (bitcast, getelementptr,
//     phi, select) stay in their source's metapool;
//  2. inter-pool edges — loading a pointer from pool M yields a pointer of
//     M's declared pointee pool, and stores respect the same edge;
//  3. type-homogeneity claims — object-level pointers into a TH pool agree
//     with the pool's declared element type;
//  4. check coverage — the run-time checks the pool descriptors require
//     (lscheck on non-TH complete pools, boundscheck on unproven indexing,
//     registration of allocations) are actually present.
package typecheck

import (
	"fmt"

	"sva/internal/ir"
	"sva/internal/svaops"
)

// Error is one type-check failure.
type Error struct {
	Fn   string
	Rule string
	Msg  string
}

func (e Error) Error() string { return fmt.Sprintf("@%s [%s]: %s", e.Fn, e.Rule, e.Msg) }

// Checker verifies one safety-compiled program.
type Checker struct {
	descs map[string]*ir.MetapoolDesc
	// descID maps pool name to its registry index (the mp constants
	// embedded in check calls).
	descID map[string]int
	// Allocators lists allocation functions whose results must be
	// registered (for the coverage rule).
	Allocators map[string]bool

	errs []error
}

// New builds a checker from the program's metapool descriptors (found on
// the first module).
func New(descs []*ir.MetapoolDesc) *Checker {
	c := &Checker{
		descs:      map[string]*ir.MetapoolDesc{},
		descID:     map[string]int{},
		Allocators: map[string]bool{},
	}
	for i, d := range descs {
		c.descs[d.Name] = d
		c.descID[d.Name] = i
	}
	return c
}

// Check verifies all safety-compiled functions of the given modules,
// returning every violation found.
func (c *Checker) Check(mods ...*ir.Module) []error {
	c.errs = nil
	for _, m := range mods {
		for _, f := range m.Funcs {
			if f.SafetyCompiled {
				c.checkFunc(f)
			}
		}
	}
	return c.errs
}

func (c *Checker) fail(f *ir.Function, rule, format string, args ...interface{}) {
	c.errs = append(c.errs, Error{Fn: f.Nm, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// poolOf reads the metapool annotation of a value ("" if none — constants,
// nulls and non-pointers have no pool).
func poolOf(v ir.Value) string {
	switch v := v.(type) {
	case *ir.Instr:
		return v.Pool
	case *ir.Param:
		return v.Pool
	case *ir.Global:
		return v.Pool
	}
	return ""
}

func isNullish(v ir.Value) bool {
	switch v.(type) {
	case *ir.ConstNull, *ir.ConstUndef:
		return true
	}
	return false
}

func (c *Checker) desc(f *ir.Function, name string) *ir.MetapoolDesc {
	d := c.descs[name]
	if d == nil && name != "" {
		c.fail(f, "pools", "annotation names unknown metapool %s", name)
	}
	return d
}

func (c *Checker) checkFunc(f *ir.Function) {
	f.Renumber()
	// Re-derive every pchk.elide.* annotation before applying the
	// coverage rules (which accept an elided check as coverage only
	// because this pass independently proved it redundant).
	c.checkElisions(f)
	for _, b := range f.Blocks {
		// lschecked tracks pointer values covered by a pchk.lscheck in
		// this block so far; boundsChecked tracks GEPs awaiting coverage.
		lschecked := map[ir.Value]bool{}
		boundsChecked := map[ir.Value]bool{}
		// First sweep: record which values the block's checks cover.
		for _, in := range b.Instrs {
			if name, ok := in.IsIntrinsicCall(); ok {
				switch name {
				case svaops.LSCheck, svaops.ElideLS:
					// The check may operate on an inserted i8* view of the
					// pointer; coverage extends to the cast's source.  An
					// elided check still counts as coverage: checkElisions
					// proved it would have passed.
					lschecked[in.Args[1]] = true
					if bc, okc := in.Args[1].(*ir.Instr); okc && bc.Op == ir.OpBitcast {
						lschecked[bc.Args[0]] = true
					}
					c.checkMPConst(f, in, in.Args[1])
				case svaops.BoundsCheck, svaops.ElideBounds:
					boundsChecked[in.Args[2]] = true
					if bc, okc := in.Args[2].(*ir.Instr); okc && bc.Op == ir.OpBitcast {
						boundsChecked[bc.Args[0]] = true
					}
					c.checkMPConst(f, in, in.Args[1])
				case svaops.ObjRegister, svaops.ObjRegisterStack:
					c.checkMPConst(f, in, in.Args[1])
					c.checkTHRegistration(f, in)
				case svaops.ObjDrop:
					c.checkMPConst(f, in, in.Args[1])
				}
			}
		}
		for _, in := range b.Instrs {
			c.checkInstr(f, in, lschecked, boundsChecked)
		}
	}
}

// checkMPConst verifies that a check call's pool-ID constant matches the
// annotated pool of the pointer it checks (rule: the compiler cannot lie
// about which pool a check consults).
func (c *Checker) checkMPConst(f *ir.Function, in *ir.Instr, ptr ir.Value) {
	idc, ok := in.Args[0].(*ir.ConstInt)
	if !ok {
		c.fail(f, "checks", "%s with non-constant pool ID", mustName(in))
		return
	}
	pool := poolOf(ptr)
	if pool == "" {
		// The pointer value itself may be an inserted cast; its pool was
		// inherited during annotation, so absence here means the compiler
		// produced an unannotated pointer — flag it.
		c.fail(f, "aliasing", "%s checks unannotated pointer %s", mustName(in), ptr.Ident())
		return
	}
	want, ok := c.descID[pool]
	if !ok {
		c.fail(f, "pools", "pointer %s annotated with unknown pool %s", ptr.Ident(), pool)
		return
	}
	if int(idc.SignedValue()) != want {
		c.fail(f, "aliasing", "%s uses pool ID %d but %s belongs to %s (ID %d)",
			mustName(in), idc.SignedValue(), ptr.Ident(), pool, want)
	}
}

// checkTHRegistration validates type-homogeneity claims at registration
// sites: the registered pointer's object type must match the pool's
// declared element type.
func (c *Checker) checkTHRegistration(f *ir.Function, in *ir.Instr) {
	idc, ok := in.Args[0].(*ir.ConstInt)
	if !ok {
		return
	}
	var d *ir.MetapoolDesc
	for name, id := range c.descID {
		if id == int(idc.SignedValue()) {
			d = c.descs[name]
		}
	}
	if d == nil || !d.TypeHomogeneous || d.ElemType == nil {
		return
	}
	// Find the object type: strip the inserted i8* cast.
	src := in.Args[1]
	if ci, ok := src.(*ir.Instr); ok && ci.Op == ir.OpBitcast {
		src = ci.Args[0]
	}
	t := src.Type()
	if !t.IsPointer() {
		return
	}
	et := t.Elem()
	for et.IsArray() {
		et = et.Elem()
	}
	if et == ir.I8 {
		// Raw allocator result: acceptable — the typed view is checked at
		// its cast sites via the aliasing rule.
		return
	}
	if et != d.ElemType {
		c.fail(f, "type-homogeneity", "object of type %s registered in TH pool %s of %s",
			et, d.Name, d.ElemType)
	}
}

func mustName(in *ir.Instr) string {
	n, _ := in.IsIntrinsicCall()
	return n
}

func (c *Checker) checkInstr(f *ir.Function, in *ir.Instr, lschecked, boundsChecked map[ir.Value]bool) {
	switch in.Op {
	case ir.OpBitcast, ir.OpGEP:
		// Rule 1: derived pointers stay in the source pool.
		src, dst := poolOf(in.Args[0]), in.Pool
		if src != "" && dst != "" && src != dst {
			c.fail(f, "aliasing", "%s result annotated %s but source %s is in %s",
				in.Op, dst, in.Args[0].Ident(), src)
		}
		if in.Op == ir.OpGEP && dst != "" {
			c.requireBoundsCheck(f, in, boundsChecked)
		}

	case ir.OpPhi, ir.OpSelect:
		if !in.Typ.IsPointer() || in.Pool == "" {
			return
		}
		for i, a := range in.Args {
			if in.Op == ir.OpSelect && i == 0 {
				continue
			}
			if !a.Type().IsPointer() || isNullish(a) {
				continue
			}
			if p := poolOf(a); p != "" && p != in.Pool {
				c.fail(f, "aliasing", "phi/select mixes pools %s and %s", in.Pool, p)
			}
		}

	case ir.OpLoad:
		srcPool := poolOf(in.Args[0])
		if srcPool == "" {
			return
		}
		d := c.desc(f, srcPool)
		if d == nil {
			return
		}
		// Rule 4: non-TH complete pools need a load-store check.
		if !d.TypeHomogeneous && d.Complete && !lschecked[in.Args[0]] {
			c.fail(f, "coverage", "load through non-TH complete pool %s without lscheck", srcPool)
		}
		// Rule 2: pointer loads follow the declared pool edge.
		if in.Typ.IsPointer() && in.Pool != "" {
			if d.Pointee == "" {
				c.fail(f, "edges", "load of pointer from pool %s which declares no pointee pool", srcPool)
			} else if in.Pool != d.Pointee {
				c.fail(f, "edges", "load from %s yields pool %s, declared pointee is %s",
					srcPool, in.Pool, d.Pointee)
			}
		}

	case ir.OpStore:
		dstPool := poolOf(in.Args[1])
		if dstPool == "" {
			return
		}
		d := c.desc(f, dstPool)
		if d == nil {
			return
		}
		if !d.TypeHomogeneous && d.Complete && !lschecked[in.Args[1]] {
			c.fail(f, "coverage", "store through non-TH complete pool %s without lscheck", dstPool)
		}
		if in.Args[0].Type().IsPointer() && !isNullish(in.Args[0]) {
			vp := poolOf(in.Args[0])
			if vp != "" {
				if d.Pointee == "" {
					c.fail(f, "edges", "store of pointer (pool %s) into pool %s which declares no pointee",
						vp, dstPool)
				} else if vp != d.Pointee {
					c.fail(f, "edges", "store of pool-%s pointer into %s whose pointee is %s",
						vp, dstPool, d.Pointee)
				}
			}
		}

	case ir.OpCall:
		if _, intrinsic := in.IsIntrinsicCall(); intrinsic {
			return
		}
		callee, ok := in.Callee.(*ir.Function)
		if !ok || !callee.SafetyCompiled {
			return
		}
		// Rule 1 across calls: argument pools match parameter pools.
		for i := 0; i < len(in.Args) && i < len(callee.Params); i++ {
			prm := callee.Params[i]
			if !prm.Typ.IsPointer() || isNullish(in.Args[i]) {
				continue
			}
			ap, pp := poolOf(in.Args[i]), prm.Pool
			if ap != "" && pp != "" && ap != pp {
				c.fail(f, "aliasing", "call @%s arg %d pool %s != param pool %s",
					callee.Nm, i, ap, pp)
			}
		}
		if in.Typ.IsPointer() && in.Pool != "" && callee.RetPool != "" && in.Pool != callee.RetPool {
			c.fail(f, "aliasing", "call @%s result pool %s != callee return pool %s",
				callee.Nm, in.Pool, callee.RetPool)
		}
	}
}

// requireBoundsCheck enforces rule 4 for indexing: a GEP that is not
// provably safe must be covered by a pchk.bounds on its result in the same
// block.
func (c *Checker) requireBoundsCheck(f *ir.Function, in *ir.Instr, boundsChecked map[ir.Value]bool) {
	if gepStaticallySafe(in) {
		return
	}
	d := c.descs[in.Pool]
	if d == nil {
		return
	}
	if boundsChecked[in] {
		return
	}
	// The inserted check operates on an i8* cast of the GEP; accept
	// coverage through a cast user.
	for v := range boundsChecked {
		if ci, ok := v.(*ir.Instr); ok && ci.Op == ir.OpBitcast && ci.Args[0] == ir.Value(in) {
			return
		}
	}
	c.fail(f, "coverage", "unproven indexing in pool %s without bounds check", in.Pool)
}

// gepStaticallySafe mirrors the compiler's elision rule (including the
// masked-index idioms of §7.1.3); the verifier re-derives it rather than
// trusting the compiler.
func gepStaticallySafe(in *ir.Instr) bool {
	cur := in.Args[0].Type().Elem()
	for k := 1; k < len(in.Args); k++ {
		idx := in.Args[k]
		if k == 1 {
			c, ok := idx.(*ir.ConstInt)
			if !ok || c.SignedValue() != 0 {
				return false
			}
			continue
		}
		switch cur.Kind() {
		case ir.ArrayKind:
			if !indexBounded(idx, int64(cur.Len())) {
				return false
			}
			cur = cur.Elem()
		case ir.StructKind:
			c, ok := idx.(*ir.ConstInt)
			if !ok {
				return false
			}
			fi := c.SignedValue()
			if fi < 0 || fi >= int64(cur.NumFields()) {
				// Malformed constant field index: not provable, and the
				// verifier must not panic on compiler-supplied IR.
				return false
			}
			cur = cur.Field(int(fi))
		default:
			return false
		}
	}
	return true
}

func indexBounded(idx ir.Value, n int64) bool {
	switch v := idx.(type) {
	case *ir.ConstInt:
		sv := v.SignedValue()
		return sv >= 0 && sv < n
	case *ir.Instr:
		switch v.Op {
		case ir.OpAnd:
			for _, a := range v.Args {
				if c, ok := a.(*ir.ConstInt); ok {
					if sv := c.SignedValue(); sv >= 0 && sv < n {
						return true
					}
				}
			}
		case ir.OpURem:
			if c, ok := v.Args[1].(*ir.ConstInt); ok {
				if sv := c.SignedValue(); sv > 0 && sv <= n {
					return true
				}
			}
		case ir.OpZExt:
			src := v.Args[0].Type()
			if src.IsInt() && src.Bits() < 63 && int64(1)<<uint(src.Bits()) <= n {
				return true
			}
			return indexBounded(v.Args[0], n)
		case ir.OpSExt:
			// The sub-rules only prove values in [0, n) with the top bit
			// clear, which sign extension preserves.
			return indexBounded(v.Args[0], n)
		}
	}
	return false
}
