package typecheck

// Elision verification (paper §5 discipline applied to §7.1.3's redundant
// run-time check elimination).  The optimizing pass in internal/safety is
// NOT trusted: every pchk.elide.bounds / pchk.elide.ls annotation it
// emits is re-proved here from scratch — dominance, mutation-freedom and
// the counted-loop guard discipline are all re-derived from the bytecode
// alone — and any elision the checker cannot prove is rejected.  The
// rules are deliberately a re-implementation, not an import, of the
// optimizer's logic: the pass stays outside the TCB, and the code below
// is what actually vouches for every missing check.
//
// Rule R1 (identical dominating check): a check — executed or itself a
// verified elision — on the same (pool, canonical pointer) pair dominates
// the annotation, and no path in between contains an instruction that
// could mutate the pool's object set (pchk.reg.* / pchk.drop.obj on the
// pool, or any call that is not a whitelisted effect-free intrinsic).
//
// Rule R2 (guarded counted-loop index): the elided bounds check covers a
// GEP pairing a base with a derived pointer inside the base's static
// extent: first index zero, constant in-range struct fields, and array
// indices either statically bounded or loads of a disciplined induction
// cell proven in [0, len) by a live loop-header guard.
//
// Rule R3 (value-range proven indices): like R2 but the index bounds come
// from an interval abstract interpretation over the function's SSA values
// (branch-refined ranges, urem/and-mask transfers); see vrange.go.

import (
	"fmt"

	"sva/internal/ir"
	"sva/internal/svaops"
)

type elideSite struct {
	b *ir.BasicBlock
	i int
}

type elideVerifier struct {
	f   *ir.Function
	cfg *ir.CFG
	dom *ir.DomTree

	evidence map[string][]elideSite

	vns    map[ir.Value]string
	leafID map[ir.Value]int

	cells  map[*ir.Instr]*vcellInfo
	guards map[*ir.Instr][]vcellGuard

	// rng is the lazily-built value-range analysis for rule R3 (vrange.go).
	rng *vRanges
}

type vcellInfo struct {
	ok         bool
	initStores []elideSite
	incStores  []*ir.Instr
	loads      []*ir.Instr
}

type vcellGuard struct {
	t     *ir.BasicBlock
	limit int64
}

const (
	vcellLimitMax = int64(1) << 61
	vcellStepMax  = int64(1) << 31
)

// checkElisions re-derives every elision annotation in f, failing those
// that cannot be proved.
func (c *Checker) checkElisions(f *ir.Function) {
	if len(f.Blocks) == 0 {
		return
	}
	ev := &elideVerifier{
		f:        f,
		cfg:      f.CFG(),
		evidence: map[string][]elideSite{},
		vns:      map[ir.Value]string{},
		leafID:   map[ir.Value]int{},
		cells:    map[*ir.Instr]*vcellInfo{},
		guards:   map[*ir.Instr][]vcellGuard{},
	}
	ev.dom = f.DomTree()
	inRPO := map[*ir.BasicBlock]bool{}
	for _, b := range ev.cfg.RPO {
		inRPO[b] = true
	}
	// Reverse-postorder walk: dominators precede their subtree, so all
	// evidence usable at a site has been recorded (and, for elisions,
	// verified) before the site is reached.
	for _, b := range ev.cfg.RPO {
		for i, in := range b.Instrs {
			name, ok := in.IsIntrinsicCall()
			if !ok {
				continue
			}
			switch name {
			case svaops.BoundsCheck:
				if key, _, keyed := ev.boundsKey(in); keyed {
					ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
				}
			case svaops.LSCheck:
				if key, _, keyed := ev.lsKey(in); keyed {
					ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
				}
			case svaops.ElideBounds:
				key, pool, keyed := ev.boundsKey(in)
				if (keyed && ev.provenByEvidence(key, pool, b, i)) || ev.gepGuardSafe(in) || ev.gepRangeSafe(in) {
					if keyed {
						ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
					}
				} else {
					c.fail(f, "elision", "cannot re-derive elided bounds check on %s (no dominating check, guard or range proof)",
						in.Args[2].Ident())
				}
			case svaops.ElideLS:
				key, pool, keyed := ev.lsKey(in)
				if keyed && ev.provenByEvidence(key, pool, b, i) {
					ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
				} else {
					c.fail(f, "elision", "cannot re-derive elided load-store check on %s (no dominating check)",
						in.Args[1].Ident())
				}
			}
		}
	}
	// An elision in an unreachable block was never visited above; the
	// optimizer cannot justify it, so reject it outright.
	for _, b := range f.Blocks {
		if inRPO[b] {
			continue
		}
		for _, in := range b.Instrs {
			if name, ok := in.IsIntrinsicCall(); ok &&
				(name == svaops.ElideBounds || name == svaops.ElideLS) {
				c.fail(f, "elision", "elided check in unreachable block %s", b.Nm)
			}
		}
	}
}

func vstripPtrCasts(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpBitcast || !in.Typ.IsPointer() ||
			!in.Args[0].Type().IsPointer() {
			return v
		}
		v = in.Args[0]
	}
}

func (ev *elideVerifier) vn(v ir.Value) string {
	v = vstripPtrCasts(v)
	if s, ok := ev.vns[v]; ok {
		return s
	}
	var s string
	switch t := v.(type) {
	case *ir.ConstInt:
		s = fmt.Sprintf("ci%d:%d", t.Type().Bits(), t.SignedValue())
	case *ir.ConstNull:
		s = "null"
	case *ir.Global:
		s = "g:" + t.Nm
	case *ir.Function:
		s = "f:" + t.Nm
	case *ir.Instr:
		if t.Op == ir.OpGEP {
			s = "gep:" + t.Args[0].Type().String()
			for _, a := range t.Args {
				s += "," + ev.vn(a)
			}
		} else {
			s = ev.leaf(v)
		}
	default:
		s = ev.leaf(v)
	}
	ev.vns[v] = s
	return s
}

func (ev *elideVerifier) leaf(v ir.Value) string {
	id, ok := ev.leafID[v]
	if !ok {
		id = len(ev.leafID)
		ev.leafID[v] = id
	}
	return fmt.Sprintf("v%d", id)
}

func vpoolConst(in *ir.Instr) (int64, bool) {
	c, ok := in.Args[0].(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	return c.SignedValue(), true
}

func (ev *elideVerifier) boundsKey(in *ir.Instr) (string, int64, bool) {
	mp, ok := vpoolConst(in)
	if !ok {
		return "", 0, false
	}
	return fmt.Sprintf("b:%d:%s:%s", mp, ev.vn(in.Args[1]), ev.vn(in.Args[2])), mp, true
}

func (ev *elideVerifier) lsKey(in *ir.Instr) (string, int64, bool) {
	mp, ok := vpoolConst(in)
	if !ok {
		return "", 0, false
	}
	return fmt.Sprintf("l:%d:%s", mp, ev.vn(in.Args[1])), mp, true
}

func (ev *elideVerifier) provenByEvidence(key string, pool int64, b2 *ir.BasicBlock, i2 int) bool {
	sites := ev.evidence[key]
	for k := len(sites) - 1; k >= 0; k-- {
		e := sites[k]
		if e.b == b2 {
			if e.i < i2 && !ev.killIn(e.b, e.i+1, i2, pool) {
				return true
			}
			continue
		}
		if !ev.dom.Dominates(e.b, b2) {
			continue
		}
		if ev.killIn(e.b, e.i+1, len(e.b.Instrs), pool) {
			continue
		}
		if ev.pathsClean(e.b, b2, i2, pool) {
			return true
		}
	}
	return false
}

func (ev *elideVerifier) pathsClean(b1, b2 *ir.BasicBlock, i2 int, pool int64) bool {
	inter := vinterAvoid(ev.cfg, b1, b2)
	for x := range inter {
		if ev.killIn(x, 0, len(x.Instrs), pool) {
			return false
		}
	}
	if !inter[b2] && ev.killIn(b2, 0, i2, pool) {
		return false
	}
	return true
}

func (ev *elideVerifier) killIn(b *ir.BasicBlock, from, to int, pool int64) bool {
	for i := from; i < to && i < len(b.Instrs); i++ {
		if vinstrKills(b.Instrs[i], pool) {
			return true
		}
	}
	return false
}

func vinstrKills(in *ir.Instr, pool int64) bool {
	if in.Op != ir.OpCall {
		return false
	}
	name, ok := in.IsIntrinsicCall()
	if !ok {
		return true
	}
	switch name {
	case svaops.ObjRegister, svaops.ObjRegisterStack, svaops.ObjDrop:
		if mp, okc := vpoolConst(in); okc {
			return mp == pool
		}
		return true
	case svaops.BoundsCheck, svaops.LSCheck, svaops.ICCheck,
		svaops.GetBoundsLo, svaops.GetBoundsHi,
		svaops.ElideBounds, svaops.ElideLS,
		svaops.Memcpy, svaops.Memmove, svaops.Memset, svaops.Memcmp:
		return false
	}
	return true
}

func vinterAvoid(cfg *ir.CFG, b1, b2 *ir.BasicBlock) map[*ir.BasicBlock]bool {
	fwd := map[*ir.BasicBlock]bool{}
	var stack []*ir.BasicBlock
	for _, s := range cfg.Succs[b1] {
		if s != b1 && !fwd[s] {
			fwd[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cfg.Succs[x] {
			if s != b1 && !fwd[s] {
				fwd[s] = true
				stack = append(stack, s)
			}
		}
	}
	bwd := map[*ir.BasicBlock]bool{}
	stack = stack[:0]
	for _, p := range cfg.Preds[b2] {
		if p != b1 && !bwd[p] {
			bwd[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range cfg.Preds[x] {
			if p != b1 && !bwd[p] {
				bwd[p] = true
				stack = append(stack, p)
			}
		}
	}
	inter := map[*ir.BasicBlock]bool{}
	for x := range fwd {
		if bwd[x] {
			inter[x] = true
		}
	}
	return inter
}

func (ev *elideVerifier) gepGuardSafe(check *ir.Instr) bool {
	g, ok := vstripPtrCasts(check.Args[2]).(*ir.Instr)
	if !ok || g.Op != ir.OpGEP {
		return false
	}
	if vstripPtrCasts(check.Args[1]) != vstripPtrCasts(g.Args[0]) {
		return false
	}
	cur := g.Args[0].Type().Elem()
	for k := 1; k < len(g.Args); k++ {
		idx := g.Args[k]
		if k == 1 {
			c, okc := idx.(*ir.ConstInt)
			if !okc || c.SignedValue() != 0 {
				return false
			}
			continue
		}
		switch cur.Kind() {
		case ir.ArrayKind:
			n := int64(cur.Len())
			if !indexBounded(idx, n) && !ev.cellBound(idx, n) {
				return false
			}
			cur = cur.Elem()
		case ir.StructKind:
			c, okc := idx.(*ir.ConstInt)
			if !okc {
				return false
			}
			fi := c.SignedValue()
			if fi < 0 || fi >= int64(cur.NumFields()) {
				return false
			}
			cur = cur.Field(int(fi))
		default:
			return false
		}
	}
	return true
}

func (ev *elideVerifier) cellBound(idx ir.Value, n int64) bool {
	ld, ok := idx.(*ir.Instr)
	if !ok || ld.Op != ir.OpLoad {
		return false
	}
	cell, ok := ld.Args[0].(*ir.Instr)
	if !ok || cell.Op != ir.OpAlloca {
		return false
	}
	ci := ev.cellDiscipline(cell)
	if !ci.ok {
		return false
	}
	if !ev.initDominates(ci, ld) {
		return false
	}
	for _, g := range ev.cellGuards(cell) {
		if g.limit <= n && ev.guardLiveAt(cell, g, ld) {
			return true
		}
	}
	return false
}

func vsitePos(in *ir.Instr) (b *ir.BasicBlock, idx int, ok bool) {
	b = in.Parent()
	if b == nil {
		return nil, 0, false
	}
	for i, x := range b.Instrs {
		if x == in {
			return b, i, true
		}
	}
	return nil, 0, false
}

func (ev *elideVerifier) initDominates(ci *vcellInfo, ld *ir.Instr) bool {
	bL, iL, ok := vsitePos(ld)
	if !ok {
		return false
	}
	for _, s := range ci.initStores {
		if s.b == bL && s.i < iL {
			return true
		}
		if s.b != bL && ev.dom.Dominates(s.b, bL) {
			return true
		}
	}
	return false
}

func (ev *elideVerifier) guardLiveAt(cell *ir.Instr, g vcellGuard, ld *ir.Instr) bool {
	bL, iL, ok := vsitePos(ld)
	if !ok {
		return false
	}
	if !ev.dom.Dominates(g.t, bL) {
		return false
	}
	if g.t == bL {
		return !vstoreToCellIn(bL, 0, iL, cell)
	}
	if vstoreToCellIn(g.t, 0, len(g.t.Instrs), cell) {
		return false
	}
	inter := vinterAvoid(ev.cfg, g.t, bL)
	for x := range inter {
		if vstoreToCellIn(x, 0, len(x.Instrs), cell) {
			return false
		}
	}
	if !inter[bL] && vstoreToCellIn(bL, 0, iL, cell) {
		return false
	}
	return true
}

func vstoreToCellIn(b *ir.BasicBlock, from, to int, cell *ir.Instr) bool {
	for i := from; i < to && i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(cell) {
			return true
		}
	}
	return false
}

func (ev *elideVerifier) cellDiscipline(cell *ir.Instr) *vcellInfo {
	if ci, ok := ev.cells[cell]; ok {
		return ci
	}
	ci := &vcellInfo{}
	ev.cells[cell] = ci
	if cell.AllocTy != ir.I64 || len(cell.Args) != 0 {
		return ci
	}
	for _, b := range ev.f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				if a != ir.Value(cell) {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && ai == 0:
					ci.loads = append(ci.loads, in)
				case in.Op == ir.OpStore && ai == 1:
				case in.Op == ir.OpBitcast && vregistrationOnly(ev.f, in):
				default:
					return ci
				}
			}
			if in.Callee == ir.Value(cell) {
				return ci
			}
		}
	}
	for _, b := range ev.f.Blocks {
		for i, in := range b.Instrs {
			if in.Op != ir.OpStore || in.Args[1] != ir.Value(cell) {
				continue
			}
			if c, okc := in.Args[0].(*ir.ConstInt); okc {
				if sv := c.SignedValue(); sv >= 0 && sv < vcellLimitMax {
					ci.initStores = append(ci.initStores, elideSite{b, i})
					continue
				}
				return ci
			}
			if ld := vincrementOf(in.Args[0], cell); ld != nil {
				ci.incStores = append(ci.incStores, ld)
				continue
			}
			return ci
		}
	}
	for _, ld := range ci.incStores {
		bounded := false
		for _, g := range ev.cellGuards(cell) {
			if g.limit < vcellLimitMax && ev.guardLiveAt(cell, g, ld) {
				bounded = true
				break
			}
		}
		if !bounded {
			return ci
		}
	}
	ci.ok = true
	return ci
}

func vincrementOf(v ir.Value, cell *ir.Instr) *ir.Instr {
	add, ok := v.(*ir.Instr)
	if !ok || add.Op != ir.OpAdd {
		return nil
	}
	var ld *ir.Instr
	var c *ir.ConstInt
	for _, a := range add.Args {
		if in, oki := a.(*ir.Instr); oki && in.Op == ir.OpLoad && in.Args[0] == ir.Value(cell) {
			ld = in
		} else if cc, okc := a.(*ir.ConstInt); okc {
			c = cc
		}
	}
	if ld == nil || c == nil {
		return nil
	}
	if sv := c.SignedValue(); sv <= 0 || sv > vcellStepMax {
		return nil
	}
	return ld
}

func vregistrationOnly(f *ir.Function, cast *ir.Instr) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				if a != ir.Value(cast) {
					continue
				}
				name, ok := in.IsIntrinsicCall()
				if !ok || ai != 1 || (name != svaops.ObjRegisterStack && name != svaops.ObjDrop) {
					return false
				}
			}
			if in.Callee == ir.Value(cast) {
				return false
			}
		}
	}
	return true
}

func (ev *elideVerifier) cellGuards(cell *ir.Instr) []vcellGuard {
	if gs, ok := ev.guards[cell]; ok {
		return gs
	}
	var gs []vcellGuard
	for _, h := range ev.f.Blocks {
		if len(h.Instrs) == 0 {
			continue
		}
		br := h.Instrs[len(h.Instrs)-1]
		if br.Op != ir.OpCondBr || len(br.Blocks) != 2 || br.Blocks[0] == br.Blocks[1] {
			continue
		}
		cmp, ok := br.Args[0].(*ir.Instr)
		if !ok || cmp.Op != ir.OpICmp || (cmp.Pred != ir.PredSLT && cmp.Pred != ir.PredULT) {
			continue
		}
		ld, ok := cmp.Args[0].(*ir.Instr)
		if !ok || ld.Op != ir.OpLoad || ld.Args[0] != ir.Value(cell) {
			continue
		}
		c, ok := cmp.Args[1].(*ir.ConstInt)
		if !ok {
			continue
		}
		lim := c.SignedValue()
		if lim <= 0 || lim >= vcellLimitMax {
			continue
		}
		bL, iL, okp := vsitePos(ld)
		if !okp || bL != h || vstoreToCellIn(h, iL+1, len(h.Instrs), cell) {
			continue
		}
		t := br.Blocks[0]
		if preds := ev.cfg.Preds[t]; len(preds) != 1 || preds[0] != h {
			continue
		}
		gs = append(gs, vcellGuard{t: t, limit: lim})
	}
	ev.guards[cell] = gs
	return gs
}
