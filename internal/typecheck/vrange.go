package typecheck

// Independent re-derivation of elision rule R3 (value-range proven
// indices).  This file is a self-contained copy of the interval lattice,
// transfer functions and sparse conditional solver in internal/analysis,
// deliberately NOT importing that package: the verifier must re-prove every
// elision with machinery of its own so the optimizer-side framework stays
// outside the trusted computing base (the same discipline elide.go applies
// to rules R1/R2).  Both sides run strictly intraprocedurally (calls
// evaluate to Top), which keeps them in provable lockstep.  Keep the
// algorithms behaviorally identical to internal/analysis: the verifier
// must prove at least everything the optimizer elides, and the §5 TCB
// experiment relies on it proving nothing more.

import (
	"sva/internal/ir"
)

// ---------------------------------------------------------------------------
// Interval lattice.

type vInterval struct {
	Lo, Hi int64
}

func vEmpty() vInterval        { return vInterval{Lo: 1, Hi: 0} }
func vPoint(v int64) vInterval { return vInterval{Lo: v, Hi: v} }

func vRange(lo, hi int64) vInterval {
	if lo > hi {
		return vEmpty()
	}
	return vInterval{Lo: lo, Hi: hi}
}

func vMinS(bits int) int64 {
	if bits <= 1 {
		return 0
	}
	return -(int64(1) << (bits - 1))
}

func vMaxS(bits int) int64 {
	if bits <= 1 {
		return 1
	}
	return int64(1)<<(bits-1) - 1
}

func vTop(bits int) vInterval { return vInterval{Lo: vMinS(bits), Hi: vMaxS(bits)} }

func (iv vInterval) isEmpty() bool { return iv.Lo > iv.Hi }

func (iv vInterval) within(lo, hi int64) bool {
	return !iv.isEmpty() && iv.Lo >= lo && iv.Hi <= hi
}

func (iv vInterval) nonNeg() bool { return !iv.isEmpty() && iv.Lo >= 0 }

func vJoin(a, b vInterval) vInterval {
	if a.isEmpty() {
		return b
	}
	if b.isEmpty() {
		return a
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return vInterval{Lo: lo, Hi: hi}
}

func vMeet(a, b vInterval) vInterval {
	if a.isEmpty() || b.isEmpty() {
		return vEmpty()
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	return vRange(lo, hi)
}

func vWiden(prev, next vInterval, bits int) vInterval {
	if prev.isEmpty() {
		return next
	}
	if next.isEmpty() {
		return prev
	}
	out := vInterval{Lo: prev.Lo, Hi: prev.Hi}
	if next.Lo < prev.Lo {
		out.Lo = vMinS(bits)
	}
	if next.Hi > prev.Hi {
		out.Hi = vMaxS(bits)
	}
	return out
}

func vClamp(lo, hi int64, bits int, overflow bool) vInterval {
	if overflow || lo < vMinS(bits) || hi > vMaxS(bits) {
		return vTop(bits)
	}
	return vInterval{Lo: lo, Hi: hi}
}

func vAddOv(a, b int64) (int64, bool) {
	s := a + b
	return s, (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0)
}

func vMulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	return p, p/b != a
}

func vBitCeil(max int64) int64 {
	if max < 0 {
		return vMaxS(64)
	}
	c := int64(1)
	for c <= max {
		if c > vMaxS(64)/2 {
			return vMaxS(64)
		}
		c <<= 1
	}
	return c - 1
}

// ---------------------------------------------------------------------------
// Transfer functions (wrapping semantics: possible overflow goes to Top).

func vTransferBin(op ir.Op, a, b vInterval, bits int) vInterval {
	if a.isEmpty() || b.isEmpty() {
		return vEmpty()
	}
	switch op {
	case ir.OpAdd:
		lo, ov1 := vAddOv(a.Lo, b.Lo)
		hi, ov2 := vAddOv(a.Hi, b.Hi)
		return vClamp(lo, hi, bits, ov1 || ov2)
	case ir.OpSub:
		if b.Hi == vMinS(64) || b.Lo == vMinS(64) {
			return vTop(bits)
		}
		lo, ov1 := vAddOv(a.Lo, -b.Hi)
		hi, ov2 := vAddOv(a.Hi, -b.Lo)
		return vClamp(lo, hi, bits, ov1 || ov2)
	case ir.OpMul:
		lo, hi := int64(0), int64(0)
		first := true
		for _, x := range [2]int64{a.Lo, a.Hi} {
			for _, y := range [2]int64{b.Lo, b.Hi} {
				p, ov := vMulOv(x, y)
				if ov {
					return vTop(bits)
				}
				if first || p < lo {
					lo = p
				}
				if first || p > hi {
					hi = p
				}
				first = false
			}
		}
		return vClamp(lo, hi, bits, false)
	case ir.OpUDiv:
		if !a.nonNeg() || !b.nonNeg() {
			return vTop(bits)
		}
		bl := b.Lo
		if bl < 1 {
			bl = 1
		}
		bh := b.Hi
		if bh < 1 {
			return vEmpty()
		}
		return vRange(a.Lo/bh, a.Hi/bl)
	case ir.OpSDiv:
		if b.Lo < 1 {
			return vTop(bits)
		}
		lo, hi := int64(0), int64(0)
		first := true
		for _, x := range [2]int64{a.Lo, a.Hi} {
			for _, y := range [2]int64{b.Lo, b.Hi} {
				q := x / y
				if first || q < lo {
					lo = q
				}
				if first || q > hi {
					hi = q
				}
				first = false
			}
		}
		return vClamp(lo, hi, bits, false)
	case ir.OpURem:
		if !b.nonNeg() || b.Lo < 1 {
			return vTop(bits)
		}
		out := vInterval{Lo: 0, Hi: b.Hi - 1}
		if a.nonNeg() && a.Hi < out.Hi {
			out.Hi = a.Hi
		}
		return out
	case ir.OpSRem:
		if b.isEmpty() || (b.Lo <= 0 && b.Hi >= 0) {
			return vTop(bits)
		}
		d := b.Hi
		if -b.Lo > d {
			d = -b.Lo
		}
		lo, hi := int64(0), int64(0)
		if a.Lo < 0 {
			lo = -(d - 1)
		}
		if a.Hi > 0 {
			hi = d - 1
		}
		return vRange(lo, hi)
	case ir.OpAnd:
		switch {
		case a.nonNeg() && b.nonNeg():
			hi := a.Hi
			if b.Hi < hi {
				hi = b.Hi
			}
			return vInterval{Lo: 0, Hi: hi}
		case a.nonNeg():
			return vInterval{Lo: 0, Hi: a.Hi}
		case b.nonNeg():
			return vInterval{Lo: 0, Hi: b.Hi}
		}
		return vTop(bits)
	case ir.OpOr:
		if a.nonNeg() && b.nonNeg() {
			lo := a.Lo
			if b.Lo > lo {
				lo = b.Lo
			}
			m := a.Hi
			if b.Hi > m {
				m = b.Hi
			}
			return vRange(lo, vBitCeil(m))
		}
		return vTop(bits)
	case ir.OpXor:
		if a.nonNeg() && b.nonNeg() {
			m := a.Hi
			if b.Hi > m {
				m = b.Hi
			}
			return vRange(0, vBitCeil(m))
		}
		return vTop(bits)
	case ir.OpShl:
		if !a.nonNeg() || !b.nonNeg() || b.Hi >= int64(bits) {
			return vTop(bits)
		}
		if a.Hi != 0 && a.Hi > vMaxS(bits)>>uint(b.Hi) {
			return vTop(bits)
		}
		return vRange(a.Lo<<uint(b.Lo), a.Hi<<uint(b.Hi))
	case ir.OpLShr:
		if !b.nonNeg() || b.Hi >= 64 {
			return vTop(bits)
		}
		if a.nonNeg() {
			return vRange(a.Lo>>uint(b.Hi), a.Hi>>uint(b.Lo))
		}
		if b.Lo >= 1 {
			hi := int64(ir.Truncate(^uint64(0), bits) >> uint(b.Lo))
			return vRange(0, hi)
		}
		return vTop(bits)
	case ir.OpAShr:
		if !b.nonNeg() || b.Hi >= 64 {
			return vTop(bits)
		}
		lo := a.Lo >> uint(b.Lo)
		if v := a.Lo >> uint(b.Hi); v < lo {
			lo = v
		}
		hi := a.Hi >> uint(b.Lo)
		if v := a.Hi >> uint(b.Hi); v > hi {
			hi = v
		}
		return vRange(lo, hi)
	}
	return vTop(bits)
}

func vTransferCast(op ir.Op, src vInterval, fromBits, toBits int) vInterval {
	if src.isEmpty() {
		return vEmpty()
	}
	switch op {
	case ir.OpZExt:
		if src.nonNeg() {
			return src
		}
		if fromBits < 64 {
			u := int64(1)<<uint(fromBits) - 1
			if u <= vMaxS(toBits) {
				return vRange(0, u)
			}
		}
		return vTop(toBits)
	case ir.OpSExt:
		return src
	case ir.OpTrunc:
		if src.within(vMinS(toBits), vMaxS(toBits)) {
			return src
		}
		return vTop(toBits)
	}
	return vTop(toBits)
}

func vDecideICmp(pred ir.Pred, a, b vInterval) int {
	if a.isEmpty() || b.isEmpty() {
		return -1
	}
	switch pred {
	case ir.PredEQ:
		if a.Lo == a.Hi && b.Lo == b.Hi && a.Lo == b.Lo {
			return 1
		}
		if vMeet(a, b).isEmpty() {
			return 0
		}
		return -1
	case ir.PredNE:
		switch vDecideICmp(ir.PredEQ, a, b) {
		case 1:
			return 0
		case 0:
			return 1
		}
		return -1
	case ir.PredULT, ir.PredULE, ir.PredUGT, ir.PredUGE:
		if !a.nonNeg() || !b.nonNeg() {
			return -1
		}
		return vDecideICmp(vSignedOf(pred), a, b)
	case ir.PredSLT:
		if a.Hi < b.Lo {
			return 1
		}
		if a.Lo >= b.Hi {
			return 0
		}
	case ir.PredSLE:
		if a.Hi <= b.Lo {
			return 1
		}
		if a.Lo > b.Hi {
			return 0
		}
	case ir.PredSGT:
		return vDecideICmp(ir.PredSLT, b, a)
	case ir.PredSGE:
		return vDecideICmp(ir.PredSLE, b, a)
	}
	return -1
}

func vSignedOf(pred ir.Pred) ir.Pred {
	switch pred {
	case ir.PredULT:
		return ir.PredSLT
	case ir.PredULE:
		return ir.PredSLE
	case ir.PredUGT:
		return ir.PredSGT
	case ir.PredUGE:
		return ir.PredSGE
	}
	return pred
}

func vNegatePred(pred ir.Pred) ir.Pred {
	switch pred {
	case ir.PredEQ:
		return ir.PredNE
	case ir.PredNE:
		return ir.PredEQ
	case ir.PredULT:
		return ir.PredUGE
	case ir.PredULE:
		return ir.PredUGT
	case ir.PredUGT:
		return ir.PredULE
	case ir.PredUGE:
		return ir.PredULT
	case ir.PredSLT:
		return ir.PredSGE
	case ir.PredSLE:
		return ir.PredSGT
	case ir.PredSGT:
		return ir.PredSLE
	case ir.PredSGE:
		return ir.PredSLT
	}
	return pred
}

func vSwapPred(pred ir.Pred) ir.Pred {
	switch pred {
	case ir.PredULT:
		return ir.PredUGT
	case ir.PredULE:
		return ir.PredUGE
	case ir.PredUGT:
		return ir.PredULT
	case ir.PredUGE:
		return ir.PredULE
	case ir.PredSLT:
		return ir.PredSGT
	case ir.PredSLE:
		return ir.PredSGE
	case ir.PredSGT:
		return ir.PredSLT
	case ir.PredSGE:
		return ir.PredSLE
	}
	return pred
}

// ---------------------------------------------------------------------------
// Sparse conditional solver.

// vFact is a branch-edge refinement: on entry to its block, v lies in iv.
// src is the comparison it was decomposed from (the injection experiment's
// corruption target).
type vFact struct {
	v   ir.Value
	iv  vInterval
	src *ir.Instr
}

const (
	vWidenAfter = 8
	vMaxPasses  = 64
)

type vRanges struct {
	f   *ir.Function
	cfg *ir.CFG
	dom *ir.DomTree

	val   map[*ir.Instr]vInterval
	facts map[*ir.BasicBlock][]vFact
}

func vForFunction(f *ir.Function) *vRanges {
	vr := &vRanges{
		f:     f,
		val:   map[*ir.Instr]vInterval{},
		facts: map[*ir.BasicBlock][]vFact{},
	}
	if len(f.Blocks) == 0 {
		return vr
	}
	vr.cfg = f.CFG()
	vr.dom = f.DomTree()
	vr.collectFacts()
	vr.iterate()
	return vr
}

func (vr *vRanges) collectFacts() {
	for _, t := range vr.cfg.RPO {
		preds := vr.cfg.Preds[t]
		if len(preds) != 1 {
			continue
		}
		br := preds[0].Terminator()
		if br == nil || br.Op != ir.OpCondBr || br.Blocks[0] == br.Blocks[1] {
			continue
		}
		istrue := br.Blocks[0] == t
		blk := t
		vAssertCond(br.Args[0], istrue, func(ft vFact) {
			vr.facts[blk] = append(vr.facts[blk], ft)
		})
	}
}

func vAssertCond(cond ir.Value, istrue bool, emit func(vFact)) {
	in, ok := cond.(*ir.Instr)
	if !ok {
		return
	}
	if in.Op == ir.OpICmp {
		vAssertICmp(in, istrue, emit)
		return
	}
	if istrue {
		vAssertNonZero(in, emit)
	} else {
		vAssertZero(in, emit)
	}
}

func vAssertICmp(in *ir.Instr, istrue bool, emit func(vFact)) {
	pred := in.Pred
	if !istrue {
		pred = vNegatePred(pred)
	}
	a, b := in.Args[0], in.Args[1]
	if cb, ok := b.(*ir.ConstInt); ok {
		vEmitImplied(a, pred, cb, in, emit)
	}
	if ca, ok := a.(*ir.ConstInt); ok {
		vEmitImplied(b, vSwapPred(pred), ca, in, emit)
	}
}

func vEmitImplied(v ir.Value, pred ir.Pred, c *ir.ConstInt, src *ir.Instr, emit func(vFact)) {
	if !v.Type().IsInt() {
		return
	}
	bits := v.Type().Bits()
	sv := c.SignedValue()
	uv := ir.Truncate(c.V, bits)
	switch pred {
	case ir.PredEQ:
		emit(vFact{v: v, iv: vPoint(sv), src: src})
		if sv == 0 {
			vAssertZero(v, emit)
		}
	case ir.PredNE:
		if sv == 0 {
			vAssertNonZero(v, emit)
		}
	case ir.PredSLT:
		if sv > vMinS(bits) {
			emit(vFact{v: v, iv: vRange(vMinS(bits), sv-1), src: src})
		}
	case ir.PredSLE:
		emit(vFact{v: v, iv: vRange(vMinS(bits), sv), src: src})
	case ir.PredSGT:
		if sv < vMaxS(bits) {
			emit(vFact{v: v, iv: vRange(sv+1, vMaxS(bits)), src: src})
		}
	case ir.PredSGE:
		emit(vFact{v: v, iv: vRange(sv, vMaxS(bits)), src: src})
	case ir.PredULT:
		if uv > 0 && int64(uv) <= vMaxS(bits) {
			emit(vFact{v: v, iv: vRange(0, int64(uv)-1), src: src})
		}
	case ir.PredULE:
		if int64(uv) >= 0 && int64(uv) <= vMaxS(bits) {
			emit(vFact{v: v, iv: vRange(0, int64(uv)), src: src})
		}
	}
}

func vAssertZero(v ir.Value, emit func(vFact)) {
	in, ok := v.(*ir.Instr)
	if !ok {
		return
	}
	switch in.Op {
	case ir.OpOr:
		vEmitZeroFact(in.Args[0], in, emit)
		vEmitZeroFact(in.Args[1], in, emit)
		vAssertZero(in.Args[0], emit)
		vAssertZero(in.Args[1], emit)
	case ir.OpZExt, ir.OpSExt:
		vEmitZeroFact(in.Args[0], in, emit)
		vAssertZero(in.Args[0], emit)
	case ir.OpICmp:
		vAssertICmp(in, false, emit)
	}
}

func vAssertNonZero(v ir.Value, emit func(vFact)) {
	in, ok := v.(*ir.Instr)
	if !ok {
		return
	}
	switch in.Op {
	case ir.OpAnd:
		vAssertNonZero(in.Args[0], emit)
		vAssertNonZero(in.Args[1], emit)
	case ir.OpZExt, ir.OpSExt:
		vAssertNonZero(in.Args[0], emit)
	case ir.OpICmp:
		vAssertICmp(in, true, emit)
	}
}

func vEmitZeroFact(v ir.Value, src *ir.Instr, emit func(vFact)) {
	if v.Type().IsInt() {
		emit(vFact{v: v, iv: vPoint(0), src: src})
	}
}

func (vr *vRanges) iterate() {
	counts := map[*ir.Instr]int{}
	for pass := 0; pass < vMaxPasses; pass++ {
		changed := false
		for _, b := range vr.cfg.RPO {
			for _, in := range b.Instrs {
				if !in.Typ.IsInt() {
					continue
				}
				next := vr.eval(in)
				old, seen := vr.val[in]
				if !seen {
					old = vEmpty()
				}
				merged := vJoin(old, next)
				if merged == old {
					continue
				}
				counts[in]++
				if counts[in] > vWidenAfter {
					merged = vWiden(old, merged, in.Typ.Bits())
				}
				if merged != old {
					vr.val[in] = merged
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

func (vr *vRanges) eval(in *ir.Instr) vInterval {
	bits := in.Typ.Bits()
	blk := in.Parent()
	get := func(v ir.Value) vInterval { return vr.at(v, blk) }
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpSDiv, ir.OpURem,
		ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		return vTransferBin(in.Op, get(in.Args[0]), get(in.Args[1]), bits)
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		from := 64
		if in.Args[0].Type().IsInt() {
			from = in.Args[0].Type().Bits()
		}
		return vTransferCast(in.Op, get(in.Args[0]), from, bits)
	case ir.OpICmp:
		switch vDecideICmp(in.Pred, get(in.Args[0]), get(in.Args[1])) {
		case 1:
			return vPoint(1)
		case 0:
			return vPoint(0)
		}
		return vRange(0, 1)
	case ir.OpSelect:
		t := vMeet(get(in.Args[1]), vImpliedBy(in.Args[0], true, in.Args[1]))
		e := vMeet(get(in.Args[2]), vImpliedBy(in.Args[0], false, in.Args[2]))
		switch c := get(in.Args[0]); {
		case c == vPoint(1):
			return t
		case c == vPoint(0):
			return e
		}
		return vJoin(t, e)
	case ir.OpPhi:
		out := vEmpty()
		for i, v := range in.Args {
			if i < len(in.Blocks) {
				out = vJoin(out, vr.at(v, in.Blocks[i]))
			}
		}
		return out
	}
	return vTop(bits)
}

func vImpliedBy(cond ir.Value, istrue bool, target ir.Value) vInterval {
	if !target.Type().IsInt() {
		return vTop(64)
	}
	out := vTop(target.Type().Bits())
	vAssertCond(cond, istrue, func(ft vFact) {
		if ft.v == target {
			out = vMeet(out, ft.iv)
		}
	})
	return out
}

func (vr *vRanges) at(v ir.Value, blk *ir.BasicBlock) vInterval {
	iv, _ := vr.atWitness(v, blk, false)
	return iv
}

// atWitness additionally returns the comparison instructions whose facts
// tightened the result: the proof's witnesses.
func (vr *vRanges) atWitness(v ir.Value, blk *ir.BasicBlock, wantWit bool) (vInterval, []*ir.Instr) {
	var iv vInterval
	switch x := v.(type) {
	case *ir.ConstInt:
		return vPoint(x.SignedValue()), nil
	case *ir.Instr:
		got, ok := vr.val[x]
		if !ok {
			if x.Typ.IsInt() {
				got = vEmpty()
			} else {
				return vTop(64), nil
			}
		}
		iv = got
	case *ir.Param:
		if x.Typ.IsInt() {
			iv = vTop(x.Typ.Bits())
		} else {
			return vTop(64), nil
		}
	default:
		return vTop(64), nil
	}
	var wit []*ir.Instr
	if vr.dom == nil || blk == nil {
		return iv, wit
	}
	for d := blk; d != nil; d = vr.dom.IDom(d) {
		for _, ft := range vr.facts[d] {
			if ft.v != v {
				continue
			}
			refined := vMeet(iv, ft.iv)
			if refined != iv {
				iv = refined
				if wantWit && ft.src != nil {
					wit = append(wit, ft.src)
				}
			}
		}
	}
	return iv, wit
}

// ---------------------------------------------------------------------------
// R3 re-derivation on top of the solver.

// ranges lazily runs the intraprocedural analysis for the function under
// verification.
func (ev *elideVerifier) ranges() *vRanges {
	if ev.rng == nil {
		ev.rng = vForFunction(ev.f)
	}
	return ev.rng
}

func (ev *elideVerifier) rangeIn(idx ir.Value, n int64, blk *ir.BasicBlock) bool {
	return ev.ranges().at(idx, blk).within(0, n-1)
}

// gepRangeSafe re-derives rule R3: the check pairs a GEP with its own base
// and every index interval is proven in-bounds at the check's block.  See
// internal/safety/vrange.go for the full rule statement (including why
// one-past-the-end is NOT accepted).
func (ev *elideVerifier) gepRangeSafe(check *ir.Instr) bool {
	g, ok := vstripPtrCasts(check.Args[2]).(*ir.Instr)
	if !ok || g.Op != ir.OpGEP {
		return false
	}
	if vstripPtrCasts(check.Args[1]) != vstripPtrCasts(g.Args[0]) {
		return false
	}
	blk := check.Parent()
	if blk == nil {
		return false
	}
	return ev.gepRangeInBounds(g, blk)
}

func (ev *elideVerifier) gepRangeInBounds(g *ir.Instr, blk *ir.BasicBlock) bool {
	base := g.Args[0].Type().Elem()
	// R3b: byte-view indexing off an object of known extent.
	if base == ir.I8 && len(g.Args) == 2 {
		ext, ok := ev.byteExtent(vstripPtrCasts(g.Args[0]), blk)
		if !ok {
			return false
		}
		idx := g.Args[1]
		return indexBounded(idx, ext) || ev.cellBound(idx, ext) || ev.rangeIn(idx, ext, blk)
	}
	// R3a: typed traversal with range-proven array indices.
	cur := base
	for k := 1; k < len(g.Args); k++ {
		idx := g.Args[k]
		if k == 1 {
			c, okc := idx.(*ir.ConstInt)
			if !okc || c.SignedValue() != 0 {
				return false
			}
			continue
		}
		switch cur.Kind() {
		case ir.ArrayKind:
			n := int64(cur.Len())
			if !indexBounded(idx, n) && !ev.cellBound(idx, n) && !ev.rangeIn(idx, n, blk) {
				return false
			}
			cur = cur.Elem()
		case ir.StructKind:
			c, okc := idx.(*ir.ConstInt)
			if !okc {
				return false
			}
			fi := c.SignedValue()
			if fi < 0 || fi >= int64(cur.NumFields()) {
				return false
			}
			cur = cur.Field(int(fi))
		default:
			return false
		}
	}
	return true
}

func (ev *elideVerifier) byteExtent(v ir.Value, blk *ir.BasicBlock) (int64, bool) {
	var layout ir.Layout
	switch x := v.(type) {
	case *ir.Global:
		sz, err := layout.TrySize(x.ValueType)
		return sz, err == nil && sz > 0
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			if len(x.Args) != 0 {
				return 0, false
			}
			sz, err := layout.TrySize(x.AllocTy)
			return sz, err == nil && sz > 0
		case ir.OpGEP:
			if _, ok := ev.byteExtent(vstripPtrCasts(x.Args[0]), blk); !ok {
				return 0, false
			}
			if !ev.gepRangeInBounds(x, blk) {
				return 0, false
			}
			sz, err := layout.TrySize(x.Typ.Elem())
			return sz, err == nil && sz > 0
		}
	}
	return 0, false
}
