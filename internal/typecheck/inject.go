package typecheck

import (
	"fmt"

	"sva/internal/ir"
	"sva/internal/svaops"
)

// BugKind enumerates the four classes of pointer-analysis bugs injected in
// the paper's §5 experiment ("incorrect variable aliasing, incorrect
// inter-node edges, incorrect claims of type homogeneity, and insufficient
// merging of points-to graph nodes").  InjectBug plants one instance; the
// checker must catch all of them.
type BugKind int

const (
	// BugAliasing: a derived pointer is annotated with the wrong metapool.
	BugAliasing BugKind = iota
	// BugEdge: a metapool's declared pointee edge is corrupted.
	BugEdge
	// BugTHClaim: a type-homogeneity claim names the wrong element type.
	BugTHClaim
	// BugSplit: one partition is split in two without re-running the
	// analysis (insufficient merging).
	BugSplit
	// BugBogusElision: a run-time check is annotated as elided even
	// though no dominating identical check or loop guard justifies it —
	// the checker must re-derive every elision and reject this one
	// (§7.1.3 optimization under the §5 TCB discipline).
	BugBogusElision
	// BugBogusRangeElision: a legitimately R3-elided check has the proof
	// pulled out from under it — a constant the value-range derivation
	// depends on (a branch-guard comparison bound, a urem divisor, an
	// and-mask) is corrupted so the index interval no longer fits the
	// accessed extent.  The checker's independent re-derivation must fail
	// and reject the now-unjustified elision.
	BugBogusRangeElision
)

var bugNames = [...]string{"aliasing", "edge", "th-claim", "split", "bogus-elision", "bogus-range-elision"}

func (k BugKind) String() string {
	if int(k) < len(bugNames) {
		return bugNames[k]
	}
	return fmt.Sprintf("bug(%d)", int(k))
}

// InjectBug plants the seed-th instance of the given bug kind into a
// safety-compiled program, returning a description of what was corrupted.
// ok is false when the program has no seed-th injection site of that kind.
func InjectBug(kind BugKind, seed int, descs []*ir.MetapoolDesc, mods ...*ir.Module) (string, bool) {
	switch kind {
	case BugAliasing:
		return injectAliasing(seed, descs, mods)
	case BugEdge:
		return injectEdge(seed, descs, mods)
	case BugTHClaim:
		return injectTHClaim(seed, descs, mods)
	case BugSplit:
		return injectSplit(seed, descs, mods)
	case BugBogusElision:
		return injectBogusElision(seed, mods)
	case BugBogusRangeElision:
		return injectBogusRangeElision(seed, mods)
	}
	return "", false
}

// compiledInstrs yields every instruction of safety-compiled functions.
func compiledInstrs(mods []*ir.Module, visit func(f *ir.Function, in *ir.Instr) bool) {
	for _, m := range mods {
		for _, f := range m.Funcs {
			if !f.SafetyCompiled {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if !visit(f, in) {
						return
					}
				}
			}
		}
	}
}

func otherPool(descs []*ir.MetapoolDesc, not string) string {
	for _, d := range descs {
		if d.Name != not {
			return d.Name
		}
	}
	return ""
}

func injectAliasing(seed int, descs []*ir.MetapoolDesc, mods []*ir.Module) (string, bool) {
	var sites []*ir.Instr
	compiledInstrs(mods, func(f *ir.Function, in *ir.Instr) bool {
		if (in.Op == ir.OpBitcast || in.Op == ir.OpGEP) && in.Pool != "" && poolOf(in.Args[0]) == in.Pool {
			sites = append(sites, in)
		}
		return true
	})
	if len(sites) == 0 {
		return "", false
	}
	in := sites[seed%len(sites)]
	wrong := otherPool(descs, in.Pool)
	if wrong == "" {
		return "", false
	}
	desc := fmt.Sprintf("reannotated %s result from %s to %s", in.Op, in.Pool, wrong)
	in.Pool = wrong
	return desc, true
}

func injectEdge(seed int, descs []*ir.MetapoolDesc, mods []*ir.Module) (string, bool) {
	// Corrupt the pointee edge of a pool that a pointer load actually
	// traverses, so the bug is semantically meaningful.
	var pools []string
	seen := map[string]bool{}
	compiledInstrs(mods, func(f *ir.Function, in *ir.Instr) bool {
		if in.Op == ir.OpLoad && in.Typ.IsPointer() && in.Pool != "" {
			if sp := poolOf(in.Args[0]); sp != "" && !seen[sp] {
				seen[sp] = true
				pools = append(pools, sp)
			}
		}
		return true
	})
	if len(pools) == 0 {
		return "", false
	}
	name := pools[seed%len(pools)]
	for _, d := range descs {
		if d.Name == name {
			wrong := otherPool(descs, d.Pointee)
			old := d.Pointee
			d.Pointee = wrong
			return fmt.Sprintf("pool %s pointee edge %s -> %s", name, old, wrong), true
		}
	}
	return "", false
}

func injectTHClaim(seed int, descs []*ir.MetapoolDesc, mods []*ir.Module) (string, bool) {
	// Find TH pools with a typed registration (so the claim is checkable),
	// then lie about the element type.
	typed := map[string]bool{}
	compiledInstrs(mods, func(f *ir.Function, in *ir.Instr) bool {
		name, ok := in.IsIntrinsicCall()
		if !ok || (name != "pchk.reg.obj" && name != "pchk.reg.stack") {
			return true
		}
		src := in.Args[1]
		if ci, okc := src.(*ir.Instr); okc && ci.Op == ir.OpBitcast {
			src = ci.Args[0]
		}
		if t := src.Type(); t.IsPointer() && t.Elem() != ir.I8 {
			if p := poolOf(src); p != "" {
				typed[p] = true
			}
		}
		return true
	})
	var candidates []*ir.MetapoolDesc
	for _, d := range descs {
		if d.TypeHomogeneous && d.ElemType != nil && typed[d.Name] {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	d := candidates[seed%len(candidates)]
	old := d.ElemType
	wrong := ir.StructOf(ir.I8, ir.I64, ir.I8) // a type no kernel object has
	if old == wrong {
		wrong = ir.StructOf(ir.I16, ir.I16)
	}
	d.ElemType = wrong
	return fmt.Sprintf("pool %s TH element type %s -> %s", d.Name, old, wrong), true
}

func injectSplit(seed int, descs []*ir.MetapoolDesc, mods []*ir.Module) (string, bool) {
	// Split: relabel one pointer load's result into a fresh clone of its
	// pool, as if the analysis had failed to merge the two partitions.
	var sites []*ir.Instr
	compiledInstrs(mods, func(f *ir.Function, in *ir.Instr) bool {
		if in.Op == ir.OpLoad && in.Typ.IsPointer() && in.Pool != "" && poolOf(in.Args[0]) != "" {
			sites = append(sites, in)
		}
		return true
	})
	if len(sites) == 0 {
		return "", false
	}
	in := sites[seed%len(sites)]
	clone := *descsByName(descs, in.Pool)
	clone.Name = in.Pool + ".split"
	// The caller owns descs; the split pool is described but the edge
	// structure no longer matches the annotations.
	mods[0].Metapools = append(mods[0].Metapools, &clone)
	old := in.Pool
	in.Pool = clone.Name
	return fmt.Sprintf("split pool %s: load result moved to %s", old, clone.Name), true
}

func injectBogusElision(seed int, mods []*ir.Module) (string, bool) {
	// The checks still present after compilation are exactly those the
	// optimizer could NOT prove redundant (it elides everything its rules
	// cover, and the checker re-derives the same rules).  Rewriting one of
	// them into a pchk.elide.* annotation therefore claims an elision with
	// no dominating check and no guard proof — the checker must reject it.
	type site struct {
		m  *ir.Module
		in *ir.Instr
		f  *ir.Function
	}
	var sites []site
	for _, m := range mods {
		for _, f := range m.Funcs {
			if !f.SafetyCompiled {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if name, ok := in.IsIntrinsicCall(); ok &&
						(name == svaops.BoundsCheck || name == svaops.LSCheck) {
						sites = append(sites, site{m, in, f})
					}
				}
			}
		}
	}
	if len(sites) == 0 {
		return "", false
	}
	s := sites[seed%len(sites)]
	name, _ := s.in.IsIntrinsicCall()
	elide := svaops.ElideBounds
	if name == svaops.LSCheck {
		elide = svaops.ElideLS
	}
	s.in.Callee = svaops.Get(s.m, elide)
	return fmt.Sprintf("rewrote unjustified %s in @%s to %s", name, s.f.Nm, elide), true
}

// newReplayVerifier builds a fresh elideVerifier for f (fresh value-range
// state too, so it sees the current constants, not pre-corruption ones).
func newReplayVerifier(f *ir.Function) *elideVerifier {
	ev := &elideVerifier{
		f:        f,
		cfg:      f.CFG(),
		evidence: map[string][]elideSite{},
		vns:      map[ir.Value]string{},
		leafID:   map[ir.Value]int{},
		cells:    map[*ir.Instr]*vcellInfo{},
		guards:   map[*ir.Instr][]vcellGuard{},
	}
	ev.dom = f.DomTree()
	return ev
}

// replayElisions walks f the way checkElisions does, calling visit for each
// pchk.elide.bounds with the verifier, its proof status under each rule, and
// the site position.  Returning false stops the walk.
func replayElisions(ev *elideVerifier, visit func(in *ir.Instr, r1, r2, r3 bool) bool) {
	for _, b := range ev.cfg.RPO {
		for i, in := range b.Instrs {
			name, ok := in.IsIntrinsicCall()
			if !ok {
				continue
			}
			switch name {
			case svaops.BoundsCheck:
				if key, _, keyed := ev.boundsKey(in); keyed {
					ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
				}
			case svaops.LSCheck:
				if key, _, keyed := ev.lsKey(in); keyed {
					ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
				}
			case svaops.ElideBounds:
				key, pool, keyed := ev.boundsKey(in)
				r1 := keyed && ev.provenByEvidence(key, pool, b, i)
				r2 := ev.gepGuardSafe(in)
				r3 := ev.gepRangeSafe(in)
				if !visit(in, r1, r2, r3) {
					return
				}
				if keyed && (r1 || r2 || r3) {
					ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
				}
			case svaops.ElideLS:
				if key, pool, keyed := ev.lsKey(in); keyed && ev.provenByEvidence(key, pool, b, i) {
					ev.evidence[key] = append(ev.evidence[key], elideSite{b, i})
				}
			}
		}
	}
}

// rangeProofConsts collects the constants an R3 proof leans on for one
// elided check: ConstInt operands of the fact-source comparisons that
// tightened an index interval (branch-guard bounds), and ConstInt operands
// of each index's defining instruction and its immediate operands (urem
// divisors, and-masks, select cap arms).
func (ev *elideVerifier) rangeProofConsts(check *ir.Instr) []struct {
	host *ir.Instr
	argi int
} {
	type slot = struct {
		host *ir.Instr
		argi int
	}
	var out []slot
	g, ok := vstripPtrCasts(check.Args[2]).(*ir.Instr)
	if !ok || g.Op != ir.OpGEP {
		return nil
	}
	blk := check.Parent()
	seen := map[*ir.Instr]bool{}
	addHost := func(h *ir.Instr) {
		if h == nil || seen[h] {
			return
		}
		seen[h] = true
		for i, a := range h.Args {
			if c, okc := a.(*ir.ConstInt); okc && c.Type().IsInt() {
				out = append(out, slot{h, i})
			}
		}
	}
	for k := 1; k < len(g.Args); k++ {
		_, wits := ev.ranges().atWitness(g.Args[k], blk, true)
		for _, w := range wits {
			addHost(w)
		}
		if di, oki := g.Args[k].(*ir.Instr); oki {
			addHost(di)
			for _, a := range di.Args {
				if ai, oka := a.(*ir.Instr); oka {
					addHost(ai)
				}
			}
		}
	}
	return out
}

func injectBogusRangeElision(seed int, mods []*ir.Module) (string, bool) {
	// Candidates: elisions only R3 justifies (an R1/R2 proof would survive
	// the corruption), paired with each constant their proof depends on.
	type cand struct {
		f      *ir.Function
		target *ir.Instr
		host   *ir.Instr
		argi   int
	}
	var cands []cand
	for _, m := range mods {
		for _, f := range m.Funcs {
			if !f.SafetyCompiled {
				continue
			}
			ev := newReplayVerifier(f)
			replayElisions(ev, func(in *ir.Instr, r1, r2, r3 bool) bool {
				if r1 || r2 || !r3 {
					return true
				}
				for _, s := range ev.rangeProofConsts(in) {
					cands = append(cands, cand{f, in, s.host, s.argi})
				}
				return true
			})
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	// Not every constant is load-bearing (a proof can hold through several
	// facts): corrupt, re-derive with a fresh verifier, and keep the first
	// corruption the checker genuinely cannot re-prove.
	for t := 0; t < len(cands); t++ {
		c := cands[(seed+t)%len(cands)]
		old := c.host.Args[c.argi].(*ir.ConstInt)
		bits := old.Type().Bits()
		nv := vMaxS(bits)
		if old.SignedValue() == nv {
			nv = vMinS(bits)
		}
		c.host.Args[c.argi] = ir.NewInt(old.Type(), nv)
		broken := false
		replayElisions(newReplayVerifier(c.f), func(in *ir.Instr, r1, r2, r3 bool) bool {
			if in != c.target {
				return true
			}
			broken = !r1 && !r2 && !r3
			return false
		})
		if broken {
			return fmt.Sprintf("corrupted range witness in @%s: %s constant %d -> %d under elided check on %s",
				c.f.Nm, c.host.Op, old.SignedValue(), nv, c.target.Args[2].Ident()), true
		}
		c.host.Args[c.argi] = old
	}
	return "", false
}

func descsByName(descs []*ir.MetapoolDesc, name string) *ir.MetapoolDesc {
	for _, d := range descs {
		if d.Name == name {
			return d
		}
	}
	return &ir.MetapoolDesc{Name: name}
}
