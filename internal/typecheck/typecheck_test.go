package typecheck

import (
	"testing"

	"sva/internal/ir"
	"sva/internal/pointer"
	"sva/internal/safety"
	"sva/internal/svaops"
)

// richModule builds a kernel-flavoured module with enough variety for the
// bug-injection matrix: TH pools (typed allocations + a linked structure),
// a collapsed pool, cross-function calls, pointer loads/stores, stack
// objects, and variable indexing.
func richModule() *ir.Module {
	m := ir.NewModule("rich")
	bp := svaops.BytePtr

	// Guest allocator (excluded subsystem "mm").
	arena := m.NewGlobal("arena", ir.ArrayOf(1<<16, ir.I8), nil)
	arena.Subsystem = "mm"
	cursor := m.NewGlobal("cursor", ir.I64, ir.I64c(0))
	cursor.Subsystem = "mm"
	b := ir.NewBuilder(m)
	km := b.NewFunc("kmalloc", ir.FuncOf(bp, []*ir.Type{ir.I64}, false), "size")
	km.Subsystem = "mm"
	cur := b.Load(cursor)
	b.Store(b.Add(cur, b.And(b.Add(b.Param(0), ir.I64c(15)), ir.I64c(^int64(15)))), cursor)
	b.Ret(b.GEP(b.Bitcast(arena, bp), cur))
	kf := b.NewFunc("kfree", ir.FuncOf(ir.Void, []*ir.Type{bp}, false), "p")
	kf.Subsystem = "mm"
	b.Ret(nil)

	task := ir.NamedStruct("tc_task_t")
	task.SetBody(ir.I64, ir.PointerTo(task), ir.ArrayOf(8, ir.I8))
	inode := ir.NamedStruct("tc_inode_t")
	inode.SetBody(ir.I32, ir.I32, ir.I64)

	taskList := m.NewGlobal("task_list", ir.PointerTo(task), nil)
	inodeTab := m.NewGlobal("inode_tab", ir.ArrayOf(4, ir.PointerTo(inode)), nil)

	// new_task: allocate, link into the global list.
	b.NewFunc("new_task", ir.FuncOf(ir.PointerTo(task), []*ir.Type{ir.I64}, false), "pid")
	raw := b.Call(km, ir.I64c(32))
	tp := b.Bitcast(raw, ir.PointerTo(task))
	b.Store(b.Param(0), b.FieldAddr(tp, 0))
	head := b.Load(taskList)
	b.Store(head, b.FieldAddr(tp, 1))
	b.Store(tp, taskList)
	b.Ret(tp)

	// find_task: walk the list (pointer loads through the TH pool).
	b.NewFunc("find_task", ir.FuncOf(ir.PointerTo(task), []*ir.Type{ir.I64}, false), "pid")
	curT := b.Alloca(ir.PointerTo(task), "cur")
	b.Store(b.Load(taskList), curT)
	b.While(func() ir.Value {
		return b.ICmp(ir.PredNE, b.Load(curT), ir.Null(ir.PointerTo(task)))
	}, func() {
		t := b.Load(curT)
		pid := b.Load(b.FieldAddr(t, 0))
		hit := b.ICmp(ir.PredEQ, pid, b.Param(0))
		b.If(hit, func() { b.Ret(t) })
		b.Store(b.Load(b.FieldAddr(t, 1)), curT)
	})
	b.Ret(ir.Null(ir.PointerTo(task)))

	// new_inode: typed allocation into a table slot by index.
	b.NewFunc("new_inode", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "slot")
	ri := b.Call(km, ir.I64c(16))
	ip := b.Bitcast(ri, ir.PointerTo(inode))
	b.Store(ir.I32c(1), b.FieldAddr(ip, 0))
	b.Store(ip, b.Index(inodeTab, b.Param(0)))
	b.Ret(ir.I64c(0))

	// mixed: a collapsed (non-TH) partition via conflicting casts.
	other := ir.NamedStruct("tc_other_t")
	other.SetBody(ir.I16, ir.I16, ir.I32)
	b.NewFunc("mixed", ir.FuncOf(ir.I64, nil, false))
	rm := b.Call(km, ir.I64c(8))
	v1 := b.Bitcast(rm, ir.PointerTo(inode))
	v2 := b.Bitcast(rm, ir.PointerTo(other))
	b.Store(ir.I32c(3), b.FieldAddr(v1, 0))
	b.Store(ir.I16c(4), b.FieldAddr(v2, 0))
	b.Ret(b.ZExt(b.Load(b.FieldAddr(v1, 0)), ir.I64))

	// caller crossing function boundaries with TH pointers.
	b.NewFunc("spawn_two", ir.FuncOf(ir.I64, nil, false))
	t1 := b.Call(m.Func("new_task"), ir.I64c(1))
	b.Call(m.Func("new_task"), ir.I64c(2))
	f1 := b.Call(m.Func("find_task"), ir.I64c(2))
	got := b.ICmp(ir.PredNE, f1, ir.Null(ir.PointerTo(task)))
	b.Ret(b.Add(b.ZExt(got, ir.I64), b.Load(b.FieldAddr(t1, 0))))

	return m
}

func compile(t *testing.T) (*safety.Program, *ir.Module) {
	t.Helper()
	m := richModule()
	cfg := safety.Config{
		Pointer: pointer.Config{
			TrackIntToPtrNull: true,
			Allocators: []pointer.AllocatorInfo{
				{Name: "kmalloc", Kind: pointer.OrdinaryAllocator, SizeArg: 0,
					FreeName: "kfree", FreePtrArg: 0, SizeClasses: true},
			},
			ExcludeSubsystems: []string{"mm"},
		},
		PromoteAlloc: "kmalloc",
		PromoteFree:  "kfree",
	}
	p, err := safety.Compile(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("module does not verify: %v", errs[0])
	}
	return p, m
}

func TestCleanProgramPasses(t *testing.T) {
	p, m := compile(t)
	c := New(p.Descs)
	if errs := c.Check(m); len(errs) != 0 {
		t.Fatalf("clean program rejected: %v", errs[0])
	}
}

// TestBugInjectionMatrix reproduces the §5 experiment: 5 instances each of
// 4 pointer-analysis bug kinds plus this reproduction's bogus-elision
// kind, all of which the verifier must detect.
func TestBugInjectionMatrix(t *testing.T) {
	kinds := []BugKind{BugAliasing, BugEdge, BugTHClaim, BugSplit, BugBogusElision}
	detected, planted := 0, 0
	for _, kind := range kinds {
		for seed := 0; seed < 5; seed++ {
			p, m := compile(t)
			desc, ok := InjectBug(kind, seed, p.Descs, m)
			if !ok {
				t.Fatalf("no injection site for %v seed %d", kind, seed)
			}
			planted++
			c := New(m.Metapools)
			errs := c.Check(m)
			if len(errs) == 0 {
				t.Errorf("%v seed %d NOT detected (%s)", kind, seed, desc)
				continue
			}
			detected++
			t.Logf("%v seed %d: %s -> %v", kind, seed, desc, errs[0])
		}
	}
	if planted != 25 || detected != planted {
		t.Errorf("detected %d/%d injected bugs; paper reports 20/20 over its 4 kinds", detected, planted)
	}
}

func TestCheckerFlagsMissingLSCheck(t *testing.T) {
	p, m := compile(t)
	// Strip every lscheck from the mixed() function: coverage must fail.
	f := m.Func("mixed")
	stripped := false
	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			if name, ok := in.IsIntrinsicCall(); ok && name == svaops.LSCheck {
				stripped = true
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	if !stripped {
		t.Skip("mixed() got no lschecks; nothing to strip")
	}
	c := New(p.Descs)
	errs := c.Check(m)
	found := false
	for _, e := range errs {
		if te, ok := e.(Error); ok && te.Rule == "coverage" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing lscheck not flagged: %v", errs)
	}
}

func TestCheckerFlagsMissingBoundsCheck(t *testing.T) {
	p, m := compile(t)
	f := m.Func("new_inode") // has a variable-index GEP into the table
	stripped := false
	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			if name, ok := in.IsIntrinsicCall(); ok && name == svaops.BoundsCheck {
				stripped = true
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	if !stripped {
		t.Fatal("new_inode had no bounds checks to strip")
	}
	c := New(p.Descs)
	errs := c.Check(m)
	found := false
	for _, e := range errs {
		if te, ok := e.(Error); ok && te.Rule == "coverage" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing bounds check not flagged: %v", errs)
	}
}

func TestCheckerFlagsWrongPoolConstant(t *testing.T) {
	p, m := compile(t)
	// Rewrite one check call's pool-ID constant.
	tampered := false
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if name, ok := in.IsIntrinsicCall(); ok && name == svaops.BoundsCheck && !tampered {
					id := in.Args[0].(*ir.ConstInt).SignedValue()
					in.Args[0] = ir.NewInt(ir.I32, (id+1)%int64(len(p.Descs)))
					tampered = true
				}
			}
		}
	}
	if !tampered {
		t.Fatal("no bounds check found to tamper with")
	}
	c := New(p.Descs)
	if errs := c.Check(m); len(errs) == 0 {
		t.Error("tampered pool constant not detected")
	}
}
