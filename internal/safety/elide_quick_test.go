package safety

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sva/internal/hw"
	"sva/internal/ir"
	"sva/internal/svaos"
	"sva/internal/vm"
)

// buildQuickModule emits a parameterized program exercising both elision
// rules and both kill conditions:
//
//	prog(x):
//	  a = alloca [8 x i64]
//	  for i in 0..limit: a[i] = i        // counted loop: R2 territory;
//	                                     // traps when limit > 8
//	  p = kmalloc(32); p64 = (i64*)p
//	  p64[off] = 7                       // off in [0,3]: in bounds
//	  if uaf: kfree(p)                   // pool mutation kills the fact
//	  p64[off] = 9                       // R1 candidate; traps iff uaf
//	  return a[x]                        // traps iff x >= 8
func buildQuickModule(limit, off int64, uaf bool) *ir.Module {
	m := ir.NewModule("quick")
	addTestAllocator(m)
	b := ir.NewBuilder(m)
	b.NewFunc("prog", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "x")
	a := b.Alloca(ir.ArrayOf(8, ir.I64), "a")
	b.For("i", ir.I64c(0), ir.I64c(limit), ir.I64c(1), func(i ir.Value) {
		b.Store(i, b.GEP(a, ir.I64c(0), i))
	})
	p := b.Call(m.Func("kmalloc"), ir.I64c(32))
	p64 := b.Bitcast(p, ir.PointerTo(ir.I64))
	b.Store(ir.I64c(7), b.PtrAdd(p64, ir.I64c(off)))
	if uaf {
		b.Call(m.Func("kfree"), p)
	}
	b.Store(ir.I64c(9), b.PtrAdd(p64, ir.I64c(off)))
	b.Ret(b.Load(b.GEP(a, ir.I64c(0), b.Param(0))))
	return m
}

// runQuick compiles m with elision toggled and runs prog(x), returning
// the result, whether a safety violation fired, and the run error.
func runQuick(t *testing.T, m *ir.Module, disable bool, x uint64) (uint64, bool, error) {
	t.Helper()
	cfg := testCfg()
	cfg.DisableElide = disable
	if _, err := Compile(cfg, m); err != nil {
		t.Fatalf("Compile(disable=%v): %v", disable, err)
	}
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("module does not verify: %v", errs[0])
	}
	v := vm.New(hw.NewMachine(0, 16), vm.ConfigSafe)
	svaos.Install(v)
	if err := v.LoadModule(m, false); err != nil {
		t.Fatal(err)
	}
	top, _ := v.AllocKernelStack(64 * 1024)
	ex, err := v.NewExec(v.FuncByName("prog"), []uint64{x}, top, hw.PrivKernel)
	if err != nil {
		t.Fatal(err)
	}
	v.SetExec(ex)
	v.StepBudget = 10_000_000
	got, rerr := v.Run()
	return got, len(v.Violations) > 0, rerr
}

// TestElideEquivalenceQuick is the elision soundness property, checked
// over randomized programs: the elided program traps exactly when the
// fully-checked program traps, and produces the same value when neither
// does.  Loop limits straddle the array bound, the heap access is
// optionally turned into a use-after-free, and the returned index is
// sometimes wild — so the generator covers elided-and-safe,
// not-elidable, and must-still-trap territory.
func TestElideEquivalenceQuick(t *testing.T) {
	prop := func(l, o uint8, uaf bool, xi uint16) bool {
		limit := int64(l%12) + 1 // 1..12: beyond 8 the loop itself traps
		off := int64(o % 4)      // always within the 32-byte allocation
		x := uint64(xi % 12)     // beyond 7 the final load traps
		gotE, vioE, errE := runQuick(t, buildQuickModule(limit, off, uaf), false, x)
		gotF, vioF, errF := runQuick(t, buildQuickModule(limit, off, uaf), true, x)
		if vioE != vioF || (errE == nil) != (errF == nil) {
			t.Logf("limit=%d off=%d uaf=%v x=%d: elided (vio=%v err=%v) vs full (vio=%v err=%v)",
				limit, off, uaf, x, vioE, errE, vioF, errF)
			return false
		}
		if errE == nil && gotE != gotF {
			t.Logf("limit=%d off=%d uaf=%v x=%d: value %d vs %d", limit, off, uaf, x, gotE, gotF)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 32,
		Rand:     rand.New(rand.NewSource(20070823)), // deterministic battery
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
