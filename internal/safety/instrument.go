package safety

import (
	"fmt"

	"sva/internal/ir"
	"sva/internal/pointer"
	"sva/internal/svaops"
)

// instrumenter rewrites analyzed functions: object registrations, stack
// promotion, and run-time check insertion (§4.3–§4.5).
type instrumenter struct {
	p        *Program
	cfg      Config
	callSets [][]string
	// devirtualized counts indirect calls converted to direct ones.
	devirtualized int

	m *ir.Module
	// out is the instruction list being rebuilt for the current block.
	out []*ir.Instr
	// replace maps promoted allocas to their heap pointers.
	replace map[ir.Value]ir.Value
	// frees lists promoted objects to release before each return.
	frees []promoted
}

type promoted struct {
	pool int
	ptr  ir.Value // i8* heap pointer
	typd ir.Value // typed pointer replacing the alloca
}

func (ins *instrumenter) module(m *ir.Module) error {
	ins.m = m
	for _, f := range m.Funcs {
		if !ins.p.Res.Analyzed(f) {
			continue
		}
		if err := ins.function(f); err != nil {
			return fmt.Errorf("safety: @%s: %w", f.Nm, err)
		}
	}
	if ins.cfg.EntryFunc != "" {
		if entry := m.Func(ins.cfg.EntryFunc); entry != nil && !entry.IsDecl() {
			ins.registerGlobals(m, entry)
		}
	}
	return nil
}

// emit appends an instruction to the rebuilt block, tagging its parent.
func (ins *instrumenter) emit(in *ir.Instr) *ir.Instr {
	ins.out = append(ins.out, in)
	return in
}

// call emits a call to a pchk/sva operation.
func (ins *instrumenter) call(name string, args ...ir.Value) *ir.Instr {
	f := svaops.Get(ins.m, name)
	return ins.emit(&ir.Instr{Op: ir.OpCall, Typ: f.Sig.Ret(), Callee: f, Args: args})
}

// asBytePtr yields an i8* view of v, emitting a bitcast if needed.
func (ins *instrumenter) asBytePtr(v ir.Value) ir.Value {
	if v.Type() == svaops.BytePtr {
		return v
	}
	return ins.emit(&ir.Instr{Op: ir.OpBitcast, Typ: svaops.BytePtr, Args: []ir.Value{v}})
}

// asI64 widens/narrows an integer value to i64.
func (ins *instrumenter) asI64(v ir.Value) ir.Value {
	t := v.Type()
	if t == ir.I64 {
		return v
	}
	return ins.emit(&ir.Instr{Op: ir.OpZExt, Typ: ir.I64, Args: []ir.Value{v}})
}

func mpConst(id int) *ir.ConstInt { return ir.NewInt(ir.I32, int64(id)) }

func (ins *instrumenter) function(f *ir.Function) error {
	ins.replace = map[ir.Value]ir.Value{}
	ins.frees = nil
	res := ins.p.Res
	var layout ir.Layout

	// Pre-compute which partitions appear as pointees (escape detection).
	pointeeOf := map[int]bool{}
	for _, n := range res.Nodes() {
		if pt := n.Pointee(); pt != nil {
			pointeeOf[pt.ID()] = true
		}
	}
	retNodes := map[int]bool{}
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet && len(t.Args) == 1 {
			if n := res.PointsTo(t.Args[0]); n != nil {
				retNodes[n.ID()] = true
			}
		}
	}

	for bi, b := range f.Blocks {
		ins.out = make([]*ir.Instr, 0, len(b.Instrs)+8)
		for _, in := range b.Instrs {
			ins.rewriteOperands(in)
			switch {
			case in.Op == ir.OpAlloca:
				ins.alloca(f, in, bi == 0, pointeeOf, retNodes, layout)

			case in.Op == ir.OpRet:
				ins.releasePromoted()
				ins.emit(in)

			case in.Op == ir.OpGEP:
				ins.emit(in)
				ins.gepCheck(in)

			case in.Op == ir.OpLoad:
				ins.lsCheck(in.Args[0])
				ins.emit(in)

			case in.Op == ir.OpStore:
				ins.lsCheck(in.Args[1])
				ins.emit(in)

			case in.Op == ir.OpCall:
				ins.callSite(in)

			default:
				ins.emit(in)
			}
		}
		for _, in := range ins.out {
			b.Append(in) // resets parent
		}
		b.Instrs = ins.out
	}
	f.SafetyCompiled = true
	f.Renumber()
	return nil
}

// rewriteOperands substitutes promoted alloca pointers.
func (ins *instrumenter) rewriteOperands(in *ir.Instr) {
	if len(ins.replace) == 0 {
		return
	}
	for i, a := range in.Args {
		if r, ok := ins.replace[a]; ok {
			in.Args[i] = r
		}
	}
	if in.Callee != nil {
		if r, ok := ins.replace[in.Callee]; ok {
			in.Callee = r
		}
	}
}

// alloca registers a stack object, promoting it to the heap if its address
// escapes the function (§4.3: "Stack-allocated objects that may have
// reachable pointers after the parent function returns ... are converted to
// be heap allocated").
func (ins *instrumenter) alloca(f *ir.Function, in *ir.Instr, entryBlock bool,
	pointeeOf, retNodes map[int]bool, layout ir.Layout) {

	node := ins.p.Res.PointsTo(in)
	mp := -1
	if node != nil {
		mp = ins.p.PoolOfNode(node)
	}

	// Size: element size times the (optional) count operand.
	elemSize := layout.Size(in.AllocTy)
	var size ir.Value = ir.I64c(elemSize)
	dynamic := len(in.Args) == 1
	escapes := node != nil && (pointeeOf[node.ID()] || retNodes[node.ID()] || node.Flags&pointer.Heap != 0)

	if escapes && entryBlock && !dynamic && ins.cfg.PromoteAlloc != "" && ins.m.Func(ins.cfg.PromoteAlloc) != nil {
		// Promote: heap-allocate through the kernel's always-available
		// ordinary interface and free on return.
		alloc := ins.m.Func(ins.cfg.PromoteAlloc)
		hp := ins.emit(&ir.Instr{Op: ir.OpCall, Typ: alloc.Sig.Ret(), Callee: alloc, Args: []ir.Value{size}})
		typed := ins.emit(&ir.Instr{Op: ir.OpBitcast, Typ: in.Typ, Args: []ir.Value{hp}})
		ins.replace[in] = typed
		if mp >= 0 {
			ins.call(svaops.ObjRegister, mpConst(mp), hp, size)
			ins.frees = append(ins.frees, promoted{pool: mp, ptr: hp, typd: typed})
		} else {
			ins.frees = append(ins.frees, promoted{pool: -1, ptr: hp, typd: typed})
		}
		return
	}

	ins.emit(in)
	if mp < 0 {
		return
	}
	if dynamic {
		n := ins.asI64(in.Args[0])
		size = ins.emit(&ir.Instr{Op: ir.OpMul, Typ: ir.I64, Args: []ir.Value{n, ir.I64c(elemSize)}})
	}
	p := ins.asBytePtr(in)
	ins.call(svaops.ObjRegisterStack, mpConst(mp), p, size)
}

// releasePromoted frees promoted stack objects before a return.
func (ins *instrumenter) releasePromoted() {
	for _, pr := range ins.frees {
		if pr.pool >= 0 {
			ins.call(svaops.ObjDrop, mpConst(pr.pool), pr.ptr)
		}
		if free := ins.m.Func(ins.cfg.PromoteFree); free != nil {
			ins.emit(&ir.Instr{Op: ir.OpCall, Typ: ir.Void, Callee: free, Args: []ir.Value{pr.ptr}})
		}
	}
}

// gepCheck inserts a bounds check after an indexing operation that cannot
// be proven safe at compile time.
func (ins *instrumenter) gepCheck(in *ir.Instr) {
	if gepProvablySafe(in) {
		return
	}
	base := in.Args[0]
	mp := ins.p.Pool(base)
	if mp < 0 {
		return
	}
	bp := ins.asBytePtr(base)
	dp := ins.asBytePtr(in)
	ins.call(svaops.BoundsCheck, mpConst(mp), bp, dp)
}

// gepProvablySafe reports whether every index provably stays within the
// static bounds of the pointee type.  Beyond constant in-bounds indices,
// it recognizes two masked-index idioms (the "static array bounds
// checking" the paper lists as a planned optimization, §7.1.3):
//
//	a[x & C]  with C+1 <= len(a)
//	a[x % C]  with C   <= len(a)  (unsigned remainder)
func gepProvablySafe(in *ir.Instr) bool {
	cur := in.Args[0].Type().Elem()
	for k := 1; k < len(in.Args); k++ {
		idx := in.Args[k]
		if k == 1 {
			c, ok := idx.(*ir.ConstInt)
			if !ok || c.SignedValue() != 0 {
				return false
			}
			continue
		}
		switch cur.Kind() {
		case ir.ArrayKind:
			if !indexBoundedBy(idx, int64(cur.Len())) {
				return false
			}
			cur = cur.Elem()
		case ir.StructKind:
			c, ok := idx.(*ir.ConstInt)
			if !ok {
				return false
			}
			fi := c.SignedValue()
			if fi < 0 || fi >= int64(cur.NumFields()) {
				// A negative or out-of-range constant field index is
				// malformed IR; it is certainly not provably safe, and
				// indexing the field list with it would panic.
				return false
			}
			cur = cur.Field(int(fi))
		default:
			return false
		}
	}
	return true
}

// indexBoundedBy reports whether idx is statically known to lie in
// [0, n).
func indexBoundedBy(idx ir.Value, n int64) bool {
	switch v := idx.(type) {
	case *ir.ConstInt:
		sv := v.SignedValue()
		return sv >= 0 && sv < n
	case *ir.Instr:
		switch v.Op {
		case ir.OpAnd:
			// x & C with C in [0, n): the result cannot exceed C.
			for _, a := range v.Args {
				if c, ok := a.(*ir.ConstInt); ok {
					if sv := c.SignedValue(); sv >= 0 && sv < n {
						return true
					}
				}
			}
		case ir.OpURem:
			if c, ok := v.Args[1].(*ir.ConstInt); ok {
				if sv := c.SignedValue(); sv > 0 && sv <= n {
					return true
				}
			}
		case ir.OpZExt:
			// A zero-extended narrow value is bounded by its source width.
			src := v.Args[0].Type()
			if src.IsInt() && src.Bits() < 63 && int64(1)<<uint(src.Bits()) <= n {
				return true
			}
			return indexBoundedBy(v.Args[0], n)
		case ir.OpSExt:
			// Every sub-rule above proves the narrow value lies in [0, n)
			// with its top bit clear, so sign extension preserves it and
			// the widened index is bounded whenever the source is.
			return indexBoundedBy(v.Args[0], n)
		}
	}
	return false
}

// lsCheck inserts a load-store check for accesses through pointers of
// non-type-homogeneous, complete partitions (§4.5).
func (ins *instrumenter) lsCheck(ptr ir.Value) {
	mp := ins.p.Pool(ptr)
	if mp < 0 {
		return
	}
	desc := ins.p.Descs[mp]
	if desc.TypeHomogeneous || !desc.Complete {
		// TH pools need no check; incomplete pools get reduced checks
		// (no lscheck), the sole source of false negatives.
		return
	}
	p := ins.asBytePtr(ptr)
	ins.call(svaops.LSCheck, mpConst(mp), p)
}

// callSite handles allocator registration, frees, pseudo-allocations,
// memory-primitive bounds checks and indirect-call checks.
func (ins *instrumenter) callSite(in *ir.Instr) {
	callee, direct := in.Callee.(*ir.Function)
	if !direct {
		// §4.8 devirtualization: a signature-asserted site whose callee
		// set collapsed to one function becomes a direct call (cheaper,
		// and it can later be inlined); no indirect-call check needed.
		if !ins.cfg.DisableDevirt {
			if f := ins.devirtTarget(in); f != nil {
				in.Callee = f
				ins.devirtualized++
				ins.emit(in)
				return
			}
		}
		ins.indirectCheck(in)
		ins.emit(in)
		return
	}
	if name, ok := in.IsIntrinsicCall(); ok {
		switch name {
		case svaops.Memcpy, svaops.Memmove:
			ins.spanCheck(in.Args[0], in.Args[2])
			ins.spanCheck(in.Args[1], in.Args[2])
			ins.emit(in)
		case svaops.Memset:
			ins.spanCheck(in.Args[0], in.Args[2])
			ins.emit(in)
		case svaops.PseudoAlloc:
			ins.pseudoAlloc(in)
		case svaops.PseudoAllocBatch:
			ins.pseudoAllocBatch(in)
		default:
			ins.emit(in)
		}
		return
	}
	for i := range ins.cfg.Pointer.Allocators {
		al := &ins.cfg.Pointer.Allocators[i]
		if al.Name == callee.Nm {
			ins.emit(in)
			ins.registerAllocation(in, al)
			return
		}
		if al.FreeName == callee.Nm {
			ins.dropAllocation(in, al)
			ins.emit(in)
			return
		}
	}
	ins.emit(in)
}

// registerAllocation inserts pchk.reg.obj after an allocator call.
func (ins *instrumenter) registerAllocation(in *ir.Instr, al *pointer.AllocatorInfo) {
	mp := ins.p.Pool(in)
	if mp < 0 {
		return
	}
	var size ir.Value
	if sf := ins.cfg.SizeFuncs[al.Name]; sf != "" {
		if fn := ins.m.Func(sf); fn != nil {
			size = ins.emit(&ir.Instr{Op: ir.OpCall, Typ: ir.I64, Callee: fn,
				Args: append([]ir.Value(nil), in.Args...)})
		}
	}
	if size == nil && al.SizeArg >= 0 && al.SizeArg < len(in.Args) {
		size = ins.asI64(in.Args[al.SizeArg])
	}
	if size == nil {
		return
	}
	p := ins.asBytePtr(in)
	ins.call(svaops.ObjRegister, mpConst(mp), p, size)
}

// dropAllocation inserts pchk.drop.obj before a deallocator call.
func (ins *instrumenter) dropAllocation(in *ir.Instr, al *pointer.AllocatorInfo) {
	ptrArg := al.FreePtrArg
	if ptrArg < 0 || ptrArg >= len(in.Args) {
		return
	}
	v := in.Args[ptrArg]
	mp := ins.p.Pool(v)
	if mp < 0 {
		return
	}
	p := ins.asBytePtr(v)
	ins.call(svaops.ObjDrop, mpConst(mp), p)
}

// pseudoAlloc rewrites sva.pseudo.alloc(start, end) into a registration of
// the manufactured-address object (§4.7).
func (ins *instrumenter) pseudoAlloc(in *ir.Instr) {
	start, ok1 := in.Args[0].(*ir.ConstInt)
	end, ok2 := in.Args[1].(*ir.ConstInt)
	if !ok1 || !ok2 {
		ins.emit(in)
		return
	}
	// Find the partition of the pointer manufactured from this address.
	mp := -1
	fn := parentFunc(in)
	if fn != nil {
		for _, b := range fn.Blocks {
			for _, other := range b.Instrs {
				if other.Op != ir.OpIntToPtr {
					continue
				}
				if c, ok := other.Args[0].(*ir.ConstInt); ok && c.V == start.V {
					if id := ins.p.Pool(other); id >= 0 {
						mp = id
					}
				}
			}
		}
	}
	if mp < 0 {
		ins.emit(in)
		return
	}
	p := ins.emit(&ir.Instr{Op: ir.OpIntToPtr, Typ: svaops.BytePtr, Args: []ir.Value{start},
		Pool: ins.p.Descs[mp].Name})
	size := ir.I64c(end.SignedValue() - start.SignedValue() + 1)
	ins.call(svaops.ObjRegister, mpConst(mp), p, size)
}

// pseudoAllocBatch rewrites sva.pseudo.alloc.batch(base, n, esize) into a
// single batched registration of n manufactured objects (§4.7 for the
// slab/table shape: per-CPU arrays, descriptor tables).  The partition is
// resolved like pseudoAlloc's, from the pointer manufactured at base.
func (ins *instrumenter) pseudoAllocBatch(in *ir.Instr) {
	base, ok1 := in.Args[0].(*ir.ConstInt)
	n, ok2 := in.Args[1].(*ir.ConstInt)
	esize, ok3 := in.Args[2].(*ir.ConstInt)
	if !ok1 || !ok2 || !ok3 {
		ins.emit(in)
		return
	}
	mp := -1
	fn := parentFunc(in)
	if fn != nil {
		for _, b := range fn.Blocks {
			for _, other := range b.Instrs {
				if other.Op != ir.OpIntToPtr {
					continue
				}
				if c, ok := other.Args[0].(*ir.ConstInt); ok && c.V == base.V {
					if id := ins.p.Pool(other); id >= 0 {
						mp = id
					}
				}
			}
		}
	}
	if mp < 0 {
		ins.emit(in)
		return
	}
	p := ins.emit(&ir.Instr{Op: ir.OpIntToPtr, Typ: svaops.BytePtr, Args: []ir.Value{base},
		Pool: ins.p.Descs[mp].Name})
	ins.call(svaops.ObjRegisterBatch, mpConst(mp), p, ir.I64c(n.SignedValue()), ir.I64c(esize.SignedValue()))
}

func parentFunc(in *ir.Instr) *ir.Function {
	if in.Parent() == nil {
		return nil
	}
	return in.Parent().Func
}

// spanCheck verifies [p, p+len) stays within p's object before a bulk
// memory operation (the Figure 2 line 19 pattern).
func (ins *instrumenter) spanCheck(ptr, length ir.Value) {
	mp := ins.p.Pool(ptr)
	if mp < 0 {
		return
	}
	p := ins.asBytePtr(ptr)
	end := ins.emit(&ir.Instr{Op: ir.OpGEP, Typ: svaops.BytePtr, Args: []ir.Value{p, ins.asI64(length)}})
	ins.call(svaops.BoundsCheck, mpConst(mp), p, end)
}

// devirtTarget returns the single resolved callee of a signature-asserted
// indirect call, or nil.
func (ins *instrumenter) devirtTarget(in *ir.Instr) *ir.Function {
	fn := parentFunc(in)
	if fn == nil || fn.SigAssert == nil || !fn.SigAssert[in.Num()] {
		return nil
	}
	callees := ins.p.Res.Callees(in)
	if len(callees) != 1 || callees[0].IsDecl() {
		return nil
	}
	return callees[0]
}

// indirectCheck inserts an indirect-call check against the callee set the
// analysis computed.
func (ins *instrumenter) indirectCheck(in *ir.Instr) {
	callees := ins.p.Res.Callees(in)
	if len(callees) == 0 {
		return // unknown target set: reduced checks
	}
	names := make([]string, len(callees))
	for i, f := range callees {
		names[i] = f.Nm
	}
	setID := len(ins.callSets)
	ins.callSets = append(ins.callSets, names)
	fp, okv := in.Callee.(ir.Value)
	if !okv {
		return
	}
	p := ins.asBytePtr(fp)
	ins.call(svaops.ICCheck, mpConst(setID), p)
}

// registerGlobals inserts registrations for every pooled global at the top
// of the kernel entry function (§4.3: "Global objects registrations are
// inserted in the kernel entry function").
func (ins *instrumenter) registerGlobals(m *ir.Module, entry *ir.Function) {
	var layout ir.Layout
	ins.out = nil
	for _, g := range m.Globals {
		mp := ins.p.Pool(g)
		if mp < 0 {
			continue
		}
		p := ins.asBytePtr(g)
		ins.call(svaops.ObjRegister, mpConst(mp), p, ir.I64c(layout.Size(g.ValueType)))
	}
	if len(ins.out) == 0 {
		return
	}
	eb := entry.Entry()
	orig := eb.Instrs
	eb.Instrs = nil
	for _, in := range ins.out {
		eb.Append(in)
	}
	eb.Instrs = append(eb.Instrs, orig...)
	entry.Renumber()
}
