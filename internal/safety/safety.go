// Package safety implements SVA's safety-checking compiler (paper §4): it
// runs the pointer analysis, maps points-to partitions to metapools,
// registers every object (heap, stack, global, manufactured) with its
// metapool, promotes escaping stack objects to the heap, inserts the
// run-time checks (bounds, load-store, indirect-call), and annotates every
// pointer value with its metapool so the §5 type checker can re-verify the
// whole analysis without trusting this package.
package safety

import (
	"fmt"

	"sva/internal/ir"
	"sva/internal/pointer"
)

// Config controls a safety compilation.
type Config struct {
	// Pointer configures the underlying points-to analysis (allocators,
	// excluded subsystems, user-copy functions).
	Pointer pointer.Config
	// EntryFunc names the kernel entry function where global-object
	// registrations are inserted ("" disables global registration).
	EntryFunc string
	// SizeFuncs maps an allocator name to the guest function returning the
	// allocation size given the same arguments (§4.4: "Each allocator must
	// provide a function that returns the size of an allocation").  When
	// absent, the allocator's SizeArg argument is used directly.
	SizeFuncs map[string]string
	// PromoteAlloc/PromoteFree name the always-available ordinary
	// allocation interface used for stack-to-heap promotion (§4.4).
	PromoteAlloc string
	PromoteFree  string
	// DisableCloning turns off the §4.8 function-cloning heuristic
	// (ablation studies).
	DisableCloning bool
	// DisableDevirt turns off §4.8 devirtualization at signature-asserted
	// indirect call sites (ablation studies).
	DisableDevirt bool
	// DisableElide turns off redundant run-time check elimination
	// (§7.1.3; ablation studies and the elision equivalence tests).
	DisableElide bool
	// DisableRangeElide turns off only elision rule R3 (value-range proven
	// indices), keeping R1/R2: the R3 on/off trap-equivalence suite and
	// elision-delta measurements flip this.
	DisableRangeElide bool
}

// Program is the result of safety compilation over a set of modules.
type Program struct {
	Modules []*ir.Module
	Res     *pointer.Result
	// Descs are the metapool descriptors, in run-time registry order
	// (attached to Modules[0], which must be loaded first).
	Descs []*ir.MetapoolDesc
	// PoolOf maps a points-to node representative ID to its metapool index.
	poolOf map[int]int
	// Metrics are the static Table 9 measurements.
	Metrics Metrics

	cfg Config
}

// Compile runs the full safety-checking pipeline.
func Compile(cfg Config, mods ...*ir.Module) (*Program, error) {
	if len(mods) == 0 {
		return nil, fmt.Errorf("safety: no modules")
	}
	for _, m := range mods {
		if len(m.Metapools) > 0 {
			return nil, fmt.Errorf("safety: module %s is already safety-compiled", m.Name)
		}
		for _, f := range m.Funcs {
			if f.SafetyCompiled {
				return nil, fmt.Errorf("safety: module %s contains safety-compiled functions", m.Name)
			}
		}
	}
	clones := 0
	if !cfg.DisableCloning {
		clones = cloneForPrecision(cfg, mods)
	}

	res := pointer.New(cfg.Pointer, mods...).Run()
	res.MergePools()
	res.MarkUserReachable()

	p := &Program{Modules: mods, Res: res, poolOf: map[int]int{}, cfg: cfg}
	p.Metrics.ClonesCreated = clones
	p.assignMetapools()

	inst := &instrumenter{p: p, cfg: cfg}
	for _, m := range mods {
		if err := inst.module(m); err != nil {
			return nil, err
		}
	}
	var elided elideStats
	if !cfg.DisableElide {
		for _, m := range mods {
			s := elideModule(m, !cfg.DisableRangeElide)
			elided.BoundsR1 += s.BoundsR1
			elided.BoundsR2 += s.BoundsR2
			elided.BoundsR3 += s.BoundsR3
			elided.LSR1 += s.LSR1
		}
	}
	p.annotate()
	// collectMetrics recounts from the instruction stream, which cannot
	// attribute an elision to its rule (or a clone to the heuristic):
	// preserve the pass-reported numbers across it.
	clones2, devirt := p.Metrics.ClonesCreated, inst.devirtualized
	p.collectMetrics()
	p.Metrics.ClonesCreated, p.Metrics.Devirtualized = clones2, devirt
	p.Metrics.BoundsElidedR1 = elided.BoundsR1
	p.Metrics.BoundsElidedR2 = elided.BoundsR2
	p.Metrics.BoundsElidedR3 = elided.BoundsR3

	mods[0].Metapools = p.Descs
	mods[0].CallSets = inst.callSets
	return p, nil
}

// assignMetapools creates one metapool descriptor per points-to partition
// that can hold data objects.
func (p *Program) assignMetapools() {
	for _, n := range p.Res.Nodes() {
		if _, ok := p.poolOf[n.ID()]; ok {
			continue
		}
		// Function-only partitions hold no data objects.
		if n.Flags == pointer.Func {
			continue
		}
		id := len(p.Descs)
		p.poolOf[n.ID()] = id
		th := n.TypeHomogeneous() && !n.Incomplete
		desc := &ir.MetapoolDesc{
			Name:            fmt.Sprintf("MP%d", id),
			TypeHomogeneous: th,
			Complete:        !n.Incomplete,
			UserSpace:       n.UserReachable,
		}
		if th {
			desc.ElemType = n.Ty
		}
		p.Descs = append(p.Descs, desc)
	}
	// Second pass: record inter-pool edges for the type checker.
	for _, n := range p.Res.Nodes() {
		id, ok := p.poolOf[n.ID()]
		if !ok {
			continue
		}
		if pt := n.Pointee(); pt != nil {
			if pid, ok := p.poolOf[pt.ID()]; ok {
				p.Descs[id].Pointee = p.Descs[pid].Name
			}
		}
	}
}

// Pool returns the metapool index of a value's partition (-1 if none).
func (p *Program) Pool(v ir.Value) int {
	n := p.Res.PointsTo(v)
	if n == nil {
		return -1
	}
	id, ok := p.poolOf[n.ID()]
	if !ok {
		return -1
	}
	return id
}

// PoolOfNode returns the metapool index of a partition (-1 if none).
func (p *Program) PoolOfNode(n *pointer.Node) int {
	id, ok := p.poolOf[n.ID()]
	if !ok {
		return -1
	}
	return id
}

// Desc returns the descriptor for pool index id.
func (p *Program) Desc(id int) *ir.MetapoolDesc { return p.Descs[id] }

// annotatedPool reads the pool annotation already on a value.
func annotatedPool(v ir.Value) string {
	switch v := v.(type) {
	case *ir.Instr:
		return v.Pool
	case *ir.Param:
		return v.Pool
	case *ir.Global:
		return v.Pool
	}
	return ""
}

// annotate writes metapool names onto every pointer-typed value of the
// analyzed functions (the §5 type encoding: int *M1 Q).
func (p *Program) annotate() {
	poolName := func(v ir.Value) string {
		id := p.Pool(v)
		if id < 0 {
			return ""
		}
		return p.Descs[id].Name
	}
	for _, m := range p.Modules {
		for _, g := range m.Globals {
			g.Pool = poolName(g)
		}
		for _, f := range m.Funcs {
			if !p.Res.Analyzed(f) {
				continue
			}
			for _, prm := range f.Params {
				if prm.Typ.IsPointer() {
					prm.Pool = poolName(prm)
				}
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if !in.Typ.IsPointer() {
						continue
					}
					if p := poolName(in); p != "" {
						in.Pool = p
					}
					if in.Pool == "" {
						// Instrumentation-inserted casts/indexing were not
						// part of the analysis; they inherit the pool of
						// the value they derive from.
						switch in.Op {
						case ir.OpBitcast, ir.OpGEP, ir.OpIntToPtr:
							in.Pool = annotatedPool(in.Args[0])
						case ir.OpCall:
							// Promoted-alloca allocations: pool of the use.
						}
					}
				}
			}
			if f.Sig.Ret().IsPointer() {
				// The return partition is the ret cell; approximate via
				// any ret instruction's operand annotation during
				// typecheck.  Record from the first ret found.
				for _, b := range f.Blocks {
					t := b.Terminator()
					if t != nil && t.Op == ir.OpRet && len(t.Args) == 1 {
						f.RetPool = poolName(t.Args[0])
						break
					}
				}
			}
		}
	}
}
