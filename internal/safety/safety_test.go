package safety

import (
	"strings"
	"testing"

	"sva/internal/hw"
	"sva/internal/ir"
	"sva/internal/metapool"
	"sva/internal/pointer"
	"sva/internal/svaops"
	"sva/internal/svaos"
	"sva/internal/vm"
)

// addTestAllocator builds a minimal guest kmalloc/kfree (bump allocation
// over a static arena) in subsystem "mm", which the safety configuration
// excludes — exactly like the paper's as-tested kernel.
func addTestAllocator(m *ir.Module) {
	bp := svaops.BytePtr
	arena := m.NewGlobal("kheap_arena", ir.ArrayOf(1<<16, ir.I8), nil)
	arena.Subsystem = "mm"
	cursor := m.NewGlobal("kheap_cursor", ir.I64, ir.I64c(0))
	cursor.Subsystem = "mm"
	b := ir.NewBuilder(m)
	km := b.NewFunc("kmalloc", ir.FuncOf(bp, []*ir.Type{ir.I64}, false), "size")
	km.Subsystem = "mm"
	cur := b.Load(cursor)
	p := b.GEP(b.Bitcast(arena, bp), cur)
	sz16 := b.And(b.Add(b.Param(0), ir.I64c(15)), ir.I64c(^int64(15)))
	b.Store(b.Add(cur, sz16), cursor)
	b.Ret(p)
	kf := b.NewFunc("kfree", ir.FuncOf(ir.Void, []*ir.Type{bp}, false), "p")
	kf.Subsystem = "mm"
	b.Ret(nil)
}

func testCfg() Config {
	return Config{
		Pointer: pointer.Config{
			TrackIntToPtrNull: true,
			Allocators: []pointer.AllocatorInfo{
				{Name: "kmalloc", Kind: pointer.OrdinaryAllocator, SizeArg: 0,
					FreeName: "kfree", FreePtrArg: 0, SizeClasses: true},
			},
			ExcludeSubsystems: []string{"mm"},
		},
		PromoteAlloc: "kmalloc",
		PromoteFree:  "kfree",
	}
}

// buildAndRun safety-compiles module m and runs fname(args) on a Safe VM.
func buildAndRun(t *testing.T, m *ir.Module, fname string, args ...uint64) (uint64, *vm.VM, error) {
	t.Helper()
	if _, err := Compile(testCfg(), m); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("instrumented module does not verify: %v", errs[0])
	}
	v := vm.New(hw.NewMachine(0, 16), vm.ConfigSafe)
	svaos.Install(v)
	if err := v.LoadModule(m, false); err != nil {
		t.Fatal(err)
	}
	f := v.FuncByName(fname)
	if f == nil {
		t.Fatalf("no function %s", fname)
	}
	top, _ := v.AllocKernelStack(64 * 1024)
	ex, err := v.NewExec(f, args, top, hw.PrivKernel)
	if err != nil {
		t.Fatal(err)
	}
	v.SetExec(ex)
	v.StepBudget = 10_000_000
	got, err := v.Run()
	return got, v, err
}

func countOps(f *ir.Function, name string) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if nm, ok := in.IsIntrinsicCall(); ok && nm == name {
				n++
			}
		}
	}
	return n
}

// vulnModule: write_at(i) writes buf[i] for a 16-byte kmalloc'd buffer.
func vulnModule() *ir.Module {
	m := ir.NewModule("vuln")
	addTestAllocator(m)
	b := ir.NewBuilder(m)
	b.NewFunc("write_at", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "i")
	p := b.Call(m.Func("kmalloc"), ir.I64c(16))
	q := b.GEP(p, b.Param(0))
	b.Store(ir.I8c(65), q)
	b.Ret(b.ZExt(b.Load(q), ir.I64))
	return m
}

func TestBoundsCheckEndToEnd(t *testing.T) {
	// In bounds: runs clean.
	got, v, err := buildAndRun(t, vulnModule(), "write_at", 8)
	if err != nil {
		t.Fatalf("in-bounds run: %v", err)
	}
	if got != 65 {
		t.Errorf("write_at(8) = %d", got)
	}
	if len(v.Violations) != 0 {
		t.Errorf("unexpected violations: %v", v.Violations)
	}
	// Out of bounds: the inserted boundscheck fires.
	_, v2, err := buildAndRun(t, vulnModule(), "write_at", 64)
	if err == nil && len(v2.Violations) == 0 {
		t.Fatal("overflow not detected")
	}
	if err != nil {
		viol, ok := err.(*metapool.Violation)
		if !ok || viol.Kind != metapool.BoundsViolation {
			t.Fatalf("got %v, want bounds violation", err)
		}
	}
}

func TestBoundsCheckInsertedOnce(t *testing.T) {
	m := vulnModule()
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("write_at")
	if n := countOps(f, svaops.BoundsCheck); n != 1 {
		t.Errorf("bounds checks = %d, want 1\n%s", n, f.String())
	}
	if n := countOps(f, svaops.ObjRegister); n != 1 {
		t.Errorf("object registrations = %d, want 1", n)
	}
	if p.Metrics.BoundsChecksInserted != 1 {
		t.Errorf("metrics bounds = %d", p.Metrics.BoundsChecksInserted)
	}
}

func TestProvablySafeGEPElided(t *testing.T) {
	m := ir.NewModule("safegep")
	addTestAllocator(m)
	st := ir.NamedStruct("sf_pair_t")
	st.SetBody(ir.I64, ir.ArrayOf(4, ir.I32))
	g := m.NewGlobal("gp", st, nil)
	b := ir.NewBuilder(m)
	b.NewFunc("touch", ir.FuncOf(ir.I64, nil, false))
	// Constant, in-bounds accesses: no checks needed.
	b.Store(ir.I64c(1), b.FieldAddr(g, 0))
	arr := b.FieldAddr(g, 1)
	b.Store(ir.I32c(2), b.Index(arr, ir.I32c(3)))
	b.Ret(b.Load(b.FieldAddr(g, 0)))
	_, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(m.Func("touch"), svaops.BoundsCheck); n != 0 {
		t.Errorf("provably-safe GEPs got %d checks\n%s", n, m.Func("touch").String())
	}
}

func TestTHPoolSkipsLSCheck(t *testing.T) {
	m := ir.NewModule("th")
	addTestAllocator(m)
	node := ir.NamedStruct("sf_node_t")
	node.SetBody(ir.I64, ir.PointerTo(node))
	b := ir.NewBuilder(m)
	b.NewFunc("use", ir.FuncOf(ir.I64, nil, false))
	raw := b.Call(m.Func("kmalloc"), ir.I64c(16))
	np := b.Bitcast(raw, ir.PointerTo(node))
	b.Store(ir.I64c(7), b.FieldAddr(np, 0))
	v := b.Load(b.FieldAddr(np, 0))
	b.Ret(v)
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	id := p.Pool(np)
	if id < 0 || !p.Descs[id].TypeHomogeneous {
		t.Fatalf("node partition not TH: %v", p.Descs[id])
	}
	if n := countOps(m.Func("use"), svaops.LSCheck); n != 0 {
		t.Errorf("TH pool got %d lschecks", n)
	}
}

func TestNonTHCompletePoolGetsLSCheck(t *testing.T) {
	m := ir.NewModule("nth")
	addTestAllocator(m)
	ta := ir.NamedStruct("sf_x_t")
	ta.SetBody(ir.I64)
	tb := ir.NamedStruct("sf_y_t")
	tb.SetBody(ir.I32, ir.I32)
	b := ir.NewBuilder(m)
	b.NewFunc("use", ir.FuncOf(ir.I64, nil, false))
	raw := b.Call(m.Func("kmalloc"), ir.I64c(8))
	pa := b.Bitcast(raw, ir.PointerTo(ta))
	pb := b.Bitcast(raw, ir.PointerTo(tb)) // conflicting view: collapses
	b.Store(ir.I64c(1), b.FieldAddr(pa, 0))
	b.Store(ir.I32c(2), b.FieldAddr(pb, 1))
	b.Ret(b.Load(b.FieldAddr(pa, 0)))
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	id := p.Pool(pa)
	if p.Descs[id].TypeHomogeneous {
		t.Fatal("conflicting-type partition claimed TH")
	}
	if !p.Descs[id].Complete {
		t.Fatal("partition unexpectedly incomplete")
	}
	if n := countOps(m.Func("use"), svaops.LSCheck); n == 0 {
		t.Error("non-TH complete pool got no lschecks")
	}
}

func TestStackRegistrationAndAutoDrop(t *testing.T) {
	m := ir.NewModule("stack")
	addTestAllocator(m)
	b := ir.NewBuilder(m)
	b.NewFunc("local", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "i")
	buf := b.Alloca(ir.ArrayOf(8, ir.I64), "buf")
	slot := b.Index(buf, b.Param(0))
	b.Store(ir.I64c(9), slot)
	b.Ret(b.Load(slot))
	if n := func() int {
		p, err := Compile(testCfg(), m)
		if err != nil {
			t.Fatal(err)
		}
		return p.Metrics.StackRegistrations
	}(); n != 1 {
		t.Fatalf("stack registrations = %d", n)
	}
	// Runs clean in bounds; the registration is dropped when the frame
	// pops, so a second call re-registers at the same address without a
	// conflict.
	v := vm.New(hw.NewMachine(0, 16), vm.ConfigSafe)
	svaos.Install(v)
	if err := v.LoadModule(m, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f := v.FuncByName("local")
		top, _ := v.AllocKernelStack(16 * 1024)
		ex, _ := v.NewExec(f, []uint64{3}, top, hw.PrivKernel)
		v.SetExec(ex)
		if _, err := v.Run(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if len(v.Violations) != 0 {
		t.Errorf("violations: %v", v.Violations)
	}
	// Out-of-bounds stack index trips the check.
	f := v.FuncByName("local")
	top, _ := v.AllocKernelStack(16 * 1024)
	ex, _ := v.NewExec(f, []uint64{1000}, top, hw.PrivKernel)
	v.SetExec(ex)
	if _, err := v.Run(); err == nil {
		t.Error("stack overflow index not detected")
	}
}

func TestEscapingAllocaPromoted(t *testing.T) {
	m := ir.NewModule("promote")
	addTestAllocator(m)
	bp := svaops.BytePtr
	sink := m.NewGlobal("sink", bp, nil)
	b := ir.NewBuilder(m)
	b.NewFunc("leak", ir.FuncOf(ir.Void, nil, false))
	buf := b.Alloca(ir.ArrayOf(4, ir.I8), "buf")
	b.Store(b.Bitcast(buf, bp), sink) // address escapes
	b.Ret(nil)
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Metrics.PromotedAllocas == 0 {
		// Count via the rewritten body: the alloca must be gone, replaced
		// by a kmalloc call.
		f := m.Func("leak")
		hasAlloca := false
		kmallocCalls := 0
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpAlloca {
					hasAlloca = true
				}
				if in.Op == ir.OpCall {
					if cf, ok := in.Callee.(*ir.Function); ok && cf.Nm == "kmalloc" {
						kmallocCalls++
					}
				}
			}
		}
		if hasAlloca || kmallocCalls == 0 {
			t.Errorf("escaping alloca not promoted:\n%s", f.String())
		}
	}
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("promoted module does not verify: %v", errs[0])
	}
}

func TestGlobalRegistrationAtEntry(t *testing.T) {
	m := ir.NewModule("globals")
	addTestAllocator(m)
	m.NewGlobal("table", ir.ArrayOf(16, ir.I64), nil)
	b := ir.NewBuilder(m)
	b.NewFunc("kernel_entry", ir.FuncOf(ir.Void, nil, false))
	b.Store(ir.I64c(1), b.Index(m.Global("table"), ir.I32c(0)))
	b.Ret(nil)
	cfg := testCfg()
	cfg.EntryFunc = "kernel_entry"
	if _, err := Compile(cfg, m); err != nil {
		t.Fatal(err)
	}
	if n := countOps(m.Func("kernel_entry"), svaops.ObjRegister); n == 0 {
		t.Errorf("no global registrations in entry:\n%s", m.Func("kernel_entry").String())
	}
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("module does not verify: %v", errs[0])
	}
}

func TestDoubleFreeCaught(t *testing.T) {
	m := ir.NewModule("dfree")
	addTestAllocator(m)
	b := ir.NewBuilder(m)
	b.NewFunc("twice", ir.FuncOf(ir.I64, nil, false))
	p := b.Call(m.Func("kmalloc"), ir.I64c(32))
	b.Call(m.Func("kfree"), p)
	b.Call(m.Func("kfree"), p)
	b.Ret(ir.I64c(0))
	_, v, err := buildAndRun(t, m, "twice")
	if err == nil {
		t.Fatal("double free not detected")
	}
	viol, ok := err.(*metapool.Violation)
	if !ok || viol.Kind != metapool.IllegalFree {
		t.Fatalf("got %v", err)
	}
	_ = v
}

func TestMemcpyOverflowCaught(t *testing.T) {
	cpyModule := func() *ir.Module {
		m := ir.NewModule("cpy")
		addTestAllocator(m)
		b := ir.NewBuilder(m)
		b.NewFunc("copy_n", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "n")
		dst := b.Call(m.Func("kmalloc"), ir.I64c(16))
		src := b.Call(m.Func("kmalloc"), ir.I64c(64))
		b.Call(svaops.Get(m, svaops.Memcpy), dst, src, b.Param(0))
		b.Ret(ir.I64c(0))
		return m
	}
	if _, _, err := buildAndRun(t, cpyModule(), "copy_n", 16); err != nil {
		t.Fatalf("legal copy: %v", err)
	}
	_, _, err := buildAndRun(t, cpyModule(), "copy_n", 48)
	if err == nil {
		t.Fatal("memcpy overflow of 16-byte object not detected")
	}
	viol, ok := err.(*metapool.Violation)
	if !ok || viol.Kind != metapool.BoundsViolation {
		t.Fatalf("got %v", err)
	}
}

func TestIndirectCallCheckEndToEnd(t *testing.T) {
	m := ir.NewModule("icc")
	addTestAllocator(m)
	sig := ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false)
	fpt := ir.PointerTo(sig)
	b := ir.NewBuilder(m)
	b.NewFunc("good", sig, "x")
	b.Ret(b.Add(b.Param(0), ir.I64c(1)))
	fp := m.NewGlobal("fp", fpt, &ir.GlobalAddr{G: m.Func("good")})
	b.NewFunc("callit", ir.FuncOf(ir.I64, nil, false))
	loaded := b.Load(fp)
	b.Ret(b.Call(loaded, ir.I64c(41)))
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Metrics.ICChecksInserted != 1 {
		t.Fatalf("ic checks = %d\n%s", p.Metrics.ICChecksInserted, m.Func("callit").String())
	}
	v := vm.New(hw.NewMachine(0, 16), vm.ConfigSafe)
	svaos.Install(v)
	if err := v.LoadModule(m, false); err != nil {
		t.Fatal(err)
	}
	f := v.FuncByName("callit")
	top, _ := v.AllocKernelStack(16 * 1024)
	ex, _ := v.NewExec(f, nil, top, hw.PrivKernel)
	v.SetExec(ex)
	got, err := v.Run()
	if err != nil || got != 42 {
		t.Fatalf("legal indirect call = %d, %v", got, err)
	}
	// Corrupt the function pointer to another function not in the set.
	evil := v.FuncByName("kfree")
	addr, _ := v.GlobalAddrByName("fp")
	v.Mach.Phys.Store(addr, v.FuncAddr(evil), 8)
	ex2, _ := v.NewExec(f, nil, top, hw.PrivKernel)
	v.SetExec(ex2)
	_, err = v.Run()
	viol, ok := err.(*metapool.Violation)
	if !ok || viol.Kind != metapool.IndirectCallViolation {
		t.Fatalf("corrupted indirect call = %v, want CFI violation", err)
	}
}

func TestPseudoAllocRegistersManufacturedObject(t *testing.T) {
	m := ir.NewModule("pseudo")
	addTestAllocator(m)
	b := ir.NewBuilder(m)
	b.NewFunc("scan_bios", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "i")
	b.Call(svaops.Get(m, svaops.PseudoAlloc), ir.I64c(0xE0000), ir.I64c(0xFFFFF))
	p := b.IntToPtr(ir.I64c(0xE0000), svaops.BytePtr)
	q := b.GEP(p, b.Param(0))
	b.Ret(b.ZExt(b.Load(q), ir.I64))
	prog, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(m.Func("scan_bios"), svaops.ObjRegister); n != 1 {
		t.Fatalf("pseudo_alloc not rewritten to registration:\n%s", m.Func("scan_bios").String())
	}
	_ = prog
	// In bounds: ok.  Out of bounds: caught even though the partition is
	// incomplete, because the object is registered ("incomplete partitions
	// only have bounds checks on registered objects").
	v := vm.New(hw.NewMachine(0, 16), vm.ConfigSafe)
	svaos.Install(v)
	if err := v.LoadModule(m, false); err != nil {
		t.Fatal(err)
	}
	run := func(i uint64) error {
		f := v.FuncByName("scan_bios")
		top, _ := v.AllocKernelStack(16 * 1024)
		ex, _ := v.NewExec(f, []uint64{i}, top, hw.PrivKernel)
		v.SetExec(ex)
		_, err := v.Run()
		return err
	}
	if err := run(0x100); err != nil {
		t.Fatalf("in-range bios scan: %v", err)
	}
	if err := run(0x30000); err == nil {
		t.Error("bios overrun into registered region not detected")
	}
}

func TestMetricsShape(t *testing.T) {
	m := vulnModule()
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	mt := p.Metrics
	if mt.AllocSitesTotal == 0 || mt.AllocSitesSeen == 0 {
		t.Errorf("alloc sites = %d/%d", mt.AllocSitesSeen, mt.AllocSitesTotal)
	}
	if mt.Loads.Total == 0 || mt.Stores.Total == 0 {
		t.Errorf("access counts = %+v", mt)
	}
	if !strings.Contains(mt.String(), "Array Indexing") {
		t.Error("metrics rendering missing rows")
	}
}

// TestFigure2Shape reproduces the instrumentation pattern of Figure 2: a
// kernel fragment with a global table lookup, a kmalloc'd object, a memset
// with known bounds, and loads through a user-provided structure.
func TestFigure2Shape(t *testing.T) {
	m := ir.NewModule("fig2")
	addTestAllocator(m)
	bp := svaops.BytePtr
	// fib_props-style global table of {scope i32, pad i32}.
	propT := ir.StructOf(ir.I32, ir.I32)
	tbl := m.NewGlobal("fib_props", ir.ArrayOf(12, propT), nil)
	fi := ir.NamedStruct("fib_info_t")
	fi.SetBody(ir.I32, ir.I32, ir.ArrayOf(22, ir.I32))
	b := ir.NewBuilder(m)
	b.NewFunc("fib_create_info", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "rtm_type")
	// fib_props[r->rtm_type].scope — variable index: needs a bounds check.
	slot := b.Index(tbl, b.Param(0))
	scope := b.Load(b.GEP(slot, ir.I64c(0), ir.I32c(0)))
	// fi = kmalloc(96); memset(fi, 0, 96) — known bounds.
	raw := b.Call(m.Func("kmalloc"), ir.I64c(96))
	fip := b.Bitcast(raw, ir.PointerTo(fi))
	b.Call(svaops.Get(m, svaops.Memset), raw, ir.I64c(0), ir.I64c(96))
	b.Store(scope, b.FieldAddr(fip, 0))
	b.Ret(b.ZExt(b.Load(b.FieldAddr(fip, 0)), ir.I64))
	_ = bp
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("fib_create_info")
	text := f.String()
	if countOps(f, svaops.BoundsCheck) < 2 {
		t.Errorf("Figure 2 shape wants table + memset bounds checks:\n%s", text)
	}
	if countOps(f, svaops.ObjRegister) != 1 {
		t.Errorf("Figure 2 shape wants the kmalloc registration:\n%s", text)
	}
	t.Logf("Figure 2 instrumented fragment:\n%s", text)
	t.Logf("points-to: %s", p.Res.Dump())
}

// All four execution configs must run the instrumented kernel module; only
// ConfigSafe executes checks (others never load metapools... they do load,
// but uninstrumented modules have no pchk calls).
func TestInstrumentedModuleRunsEverywhere(t *testing.T) {
	got, _, err := buildAndRun(t, vulnModule(), "write_at", 2)
	if err != nil || got != 65 {
		t.Fatalf("safe config: %d, %v", got, err)
	}
}

// TestMaskedIndexElision: the §7.1.3 static-bounds optimization — indices
// provably bounded by a mask, an unsigned remainder or a narrow width need
// no run-time bounds check.
func TestMaskedIndexElision(t *testing.T) {
	m := ir.NewModule("masked")
	addTestAllocator(m)
	tbl := m.NewGlobal("tbl", ir.ArrayOf(64, ir.I64), nil)
	b := ir.NewBuilder(m)
	b.NewFunc("probe", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "x")
	masked := b.And(b.Param(0), ir.I64c(63))
	v1 := b.Load(b.Index(tbl, masked)) // elidable: x & 63 < 64
	remmed := b.URem(b.Param(0), ir.I64c(64))
	v2 := b.Load(b.Index(tbl, remmed)) // elidable: x % 64 < 64
	narrow := b.ZExt(b.Trunc(b.Param(0), ir.I8), ir.I64)
	// NOT elidable: i8 range is 256 > 64.
	v3 := b.Load(b.Index(tbl, narrow))
	raw := b.Load(b.Index(tbl, b.Param(0))) // NOT elidable
	b.Ret(b.Add(b.Add(v1, v2), b.Add(v3, raw)))
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(m.Func("probe"), svaops.BoundsCheck); n != 2 {
		t.Errorf("bounds checks = %d, want 2 (two elided, two kept)\n%s",
			n, m.Func("probe").String())
	}
	if p.Metrics.GEPsProvenSafe < 2 {
		t.Errorf("proven-safe GEPs = %d", p.Metrics.GEPsProvenSafe)
	}
	// The verifier must agree that the elided sites need no check.
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatal(errs[0])
	}
}

func TestDoubleCompileRejected(t *testing.T) {
	m := vulnModule()
	if _, err := Compile(testCfg(), m); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(testCfg(), m); err == nil {
		t.Fatal("re-compiling an instrumented module must fail, not double-instrument")
	}
}
