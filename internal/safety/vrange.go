package safety

// Rule R3 (value-range proven indices): a bounds check whose GEP indices
// all have interval-analysis-proven in-bounds ranges is redundant.  The
// ranges come from internal/analysis — the sparse conditional value-range
// framework — run strictly intraprocedurally here (calls evaluate to Top):
// the bytecode verifier re-derives every R3 elision with its own
// self-contained copy of the same lattice (internal/typecheck/vrange.go),
// and keeping both sides intraprocedural keeps them in provable lockstep.
//
// Two sub-rules:
//
//	R3a (typed traversal): like R2's gepGuardSafe, but an array index may
//	also be proven by its interval — covering parameter-guard idioms
//	(`if (pid < 0 || pid >= NumPids) return` refines pid to [0,64)) that
//	no counted-loop cell discipline can see.
//
//	R3b (byte view): a single-index GEP on an i8* whose base resolves to
//	an object of statically known byte extent (fixed alloca, global, or a
//	provably in-bounds typed GEP into one); the index interval must stay
//	strictly inside the extent.  This covers memcpy/memset span checks on
//	capped lengths (select(len <u N, len, N)) and the sector-buffer
//	urem-offset idiom.
//
// Strictness: R3 requires derived ∈ [base, base+extent-1] even though the
// run-time check also admits one-past-the-end.  A one-past-end pointer of
// an *unregistered* root can alias the first byte of an adjacent registered
// object, which the reduced check reports as a straddle — so eliding it
// would hide a violation.  Strict in-bounds pointers stay inside the root's
// own memory and pass the check whether or not the root is registered.

import (
	"sva/internal/analysis"
	"sva/internal/ir"
)

// ranges lazily runs the intraprocedural interval analysis for the
// function under elision.
func (ea *elideAnalysis) ranges() *analysis.FuncRanges {
	if ea.rng == nil {
		ea.rng = analysis.ForFunction(ea.f, nil)
	}
	return ea.rng
}

// rangeIn reports whether idx's interval at blk lies in [0, n).
func (ea *elideAnalysis) rangeIn(idx ir.Value, n int64, blk *ir.BasicBlock) bool {
	return ea.ranges().At(idx, blk).Within(0, n-1)
}

// gepRangeSafe is rule R3's entry point, mirroring gepGuardSafe's contract:
// the check must pair a GEP with its own base, and every index must be
// proven in-bounds.  Ranges are evaluated at the check's block — the check
// executes under every guard dominating it, and SSA immutability makes the
// refinements valid for the index values wherever they were computed.
func (ea *elideAnalysis) gepRangeSafe(check *ir.Instr) bool {
	g, ok := stripPtrCasts(check.Args[2]).(*ir.Instr)
	if !ok || g.Op != ir.OpGEP {
		return false
	}
	if stripPtrCasts(check.Args[1]) != stripPtrCasts(g.Args[0]) {
		return false
	}
	blk := check.Parent()
	if blk == nil {
		return false
	}
	return ea.gepRangeInBounds(g, blk)
}

// gepRangeInBounds proves every index of g in-bounds at blk.
func (ea *elideAnalysis) gepRangeInBounds(g *ir.Instr, blk *ir.BasicBlock) bool {
	base := g.Args[0].Type().Elem()
	// R3b: byte-view indexing off an object of known extent.
	if base == ir.I8 && len(g.Args) == 2 {
		ext, ok := ea.byteExtent(stripPtrCasts(g.Args[0]), blk)
		if !ok {
			return false
		}
		idx := g.Args[1]
		return indexBoundedBy(idx, ext) || ea.cellBound(idx, ext) || ea.rangeIn(idx, ext, blk)
	}
	// R3a: typed traversal with range-proven array indices.
	cur := base
	for k := 1; k < len(g.Args); k++ {
		idx := g.Args[k]
		if k == 1 {
			c, okc := idx.(*ir.ConstInt)
			if !okc || c.SignedValue() != 0 {
				return false
			}
			continue
		}
		switch cur.Kind() {
		case ir.ArrayKind:
			n := int64(cur.Len())
			if !indexBoundedBy(idx, n) && !ea.cellBound(idx, n) && !ea.rangeIn(idx, n, blk) {
				return false
			}
			cur = cur.Elem()
		case ir.StructKind:
			c, okc := idx.(*ir.ConstInt)
			if !okc {
				return false
			}
			fi := c.SignedValue()
			if fi < 0 || fi >= int64(cur.NumFields()) {
				return false
			}
			cur = cur.Field(int(fi))
		default:
			return false
		}
	}
	return true
}

// byteExtent resolves a (cast-stripped) pointer to the byte size of the
// object or sub-object it provably points at the start of: a fixed-size
// alloca, a global, or an in-bounds typed GEP path into one.
func (ea *elideAnalysis) byteExtent(v ir.Value, blk *ir.BasicBlock) (int64, bool) {
	var layout ir.Layout
	switch x := v.(type) {
	case *ir.Global:
		sz, err := layout.TrySize(x.ValueType)
		return sz, err == nil && sz > 0
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			if len(x.Args) != 0 {
				return 0, false // dynamic element count
			}
			sz, err := layout.TrySize(x.AllocTy)
			return sz, err == nil && sz > 0
		case ir.OpGEP:
			// An interior pointer: its own traversal must be in-bounds
			// and rooted at an object of known extent; the remaining
			// extent is the size of the element it points at.
			if _, ok := ea.byteExtent(stripPtrCasts(x.Args[0]), blk); !ok {
				return 0, false
			}
			if !ea.gepRangeInBounds(x, blk) {
				return 0, false
			}
			sz, err := layout.TrySize(x.Typ.Elem())
			return sz, err == nil && sz > 0
		}
	}
	return 0, false
}
