package safety

// Redundant run-time check elimination (paper §7.1.3, "eliminating
// redundant run-time checks").  The pass runs after instrumentation and
// rewrites a pchk.bounds / pchk.lscheck call into the corresponding
// pchk.elide.* annotation when the check is provably redundant.  Two rules
// are applied, and — critically for the §5 TCB argument — both are
// re-derived from scratch by the bytecode verifier (internal/typecheck),
// which rejects any elision it cannot prove itself.  This pass therefore
// stays outside the trusted computing base: a bug here yields either a
// verifier rejection or a program with more checks than necessary, never
// a missed check that the verifier accepted.
//
// Rule R1 (identical dominating check): a check on the same (metapool,
// canonical pointer value) pair dominates this one, and no instruction on
// any intervening path can mutate the pool's object set (pchk.drop.obj /
// pchk.reg.* on the pool, or any call that might allocate or free —
// conservatively, every call that is not a whitelisted side-effect-free
// intrinsic).  Canonical values strip pointer bitcasts (the instrumenter
// emits a fresh i8* view per check) and compare getelementptrs
// structurally, so the second check on a recomputed address of the same
// element is recognized.
//
// Rule R2 (guarded counted-loop index): a bounds check on a GEP whose
// array indices are each either statically bounded (the §7.1.3 masked
// idioms) or a load of a non-escaping integer stack slot that a dominating
// loop-header branch proves to be in [0, len).  This is the shape the IR
// builder's For loops produce (an alloca'd induction cell tested by
// icmp slt/ult against a constant limit) and covers the kernel's PID- and
// fd-table scan loops.  The cell discipline — every store is a
// non-negative constant initialization or a guarded constant-step
// increment, and the cell address never escapes — makes the guarded range
// sound without a general value-range analysis.

import (
	"fmt"

	"sva/internal/analysis"
	"sva/internal/ir"
	"sva/internal/svaops"
)

// elideStats attributes elisions to the rule that proved them (a site
// provable several ways counts for the first rule in R1 → R2 → R3 order).
type elideStats struct {
	BoundsR1, BoundsR2, BoundsR3 int
	LSR1                         int
}

func (s elideStats) bounds() int { return s.BoundsR1 + s.BoundsR2 + s.BoundsR3 }

// elideModule runs redundant-check elimination over every safety-compiled
// function of m, returning per-rule counts of bounds and load-store checks
// rewritten to pchk.elide.* annotations.  rangeElide toggles rule R3 (the
// R3 on/off equivalence suite and ablations).
func elideModule(m *ir.Module, rangeElide bool) (stats elideStats) {
	for _, f := range m.Funcs {
		if !f.SafetyCompiled {
			continue
		}
		fs := elideFunc(m, f, rangeElide)
		stats.BoundsR1 += fs.BoundsR1
		stats.BoundsR2 += fs.BoundsR2
		stats.BoundsR3 += fs.BoundsR3
		stats.LSR1 += fs.LSR1
	}
	return
}

func elideFunc(m *ir.Module, f *ir.Function, rangeElide bool) (stats elideStats) {
	if len(f.Blocks) == 0 {
		return
	}
	ea := newElideAnalysis(f)
	// Walk blocks in reverse postorder: every dominator of a block comes
	// earlier, so all usable evidence has been recorded by the time a
	// check is considered.  Checks in unreachable blocks are never elided.
	for _, b := range ea.cfg.RPO {
		for i, in := range b.Instrs {
			name, ok := in.IsIntrinsicCall()
			if !ok {
				continue
			}
			switch name {
			case svaops.BoundsCheck:
				key, pool, keyed := ea.boundsKey(in)
				switch {
				case keyed && ea.provenByEvidence(key, pool, b, i):
					in.Callee = svaops.Get(m, svaops.ElideBounds)
					stats.BoundsR1++
				case ea.gepGuardSafe(in):
					in.Callee = svaops.Get(m, svaops.ElideBounds)
					stats.BoundsR2++
				case rangeElide && ea.gepRangeSafe(in):
					in.Callee = svaops.Get(m, svaops.ElideBounds)
					stats.BoundsR3++
				}
				if keyed {
					ea.evidence[key] = append(ea.evidence[key], eviSite{b, i})
				}
			case svaops.LSCheck:
				key, pool, keyed := ea.lsKey(in)
				if keyed && ea.provenByEvidence(key, pool, b, i) {
					in.Callee = svaops.Get(m, svaops.ElideLS)
					stats.LSR1++
				}
				if keyed {
					ea.evidence[key] = append(ea.evidence[key], eviSite{b, i})
				}
			}
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Shared analysis machinery.  The bytecode verifier re-implements this
// logic independently in internal/typecheck/elide.go; keep the two in
// behavioral lockstep (the verifier must prove at least everything this
// pass elides, and the TCB experiment relies on it proving nothing more).

type eviSite struct {
	b *ir.BasicBlock
	i int
}

type elideAnalysis struct {
	f   *ir.Function
	cfg *ir.CFG
	dom *ir.DomTree

	// evidence maps a canonical check key to the sites (in RPO walk
	// order) where that check — executed or already proven elidable — is
	// known to have passed.
	evidence map[string][]eviSite

	vns    map[ir.Value]string
	leafID map[ir.Value]int

	cells  map[*ir.Instr]*cellInfo
	guards map[*ir.Instr][]cellGuard

	// rng is the lazily built intraprocedural value-range analysis backing
	// rule R3 (vrange.go).
	rng *analysis.FuncRanges
}

// cellInfo is the discipline summary for one induction cell (an i64
// alloca used only through direct loads and stores).
type cellInfo struct {
	ok bool
	// initStores are stores of a non-negative constant; every load of the
	// cell must be dominated by one for the cell's content to be provably
	// non-negative.
	initStores []eviSite
	// incStores are `store (add (load cell), +C)` sites; each needs a live
	// guard at its operand load so the cell cannot overflow past the
	// signed range.
	incStores []*ir.Instr
	loads     []*ir.Instr
}

// cellGuard is a loop-header branch `br (icmp slt|ult (load cell), C), T, F`
// whose true edge proves content(cell) < C on entry to T.
type cellGuard struct {
	t     *ir.BasicBlock
	limit int64
}

// cellLimitMax bounds guard limits and initialization constants so that a
// guarded increment can never overflow int64 (limit + step < 2^62+2^32).
const cellLimitMax = int64(1) << 61

// cellStepMax bounds increment constants.
const cellStepMax = int64(1) << 31

func newElideAnalysis(f *ir.Function) *elideAnalysis {
	return &elideAnalysis{
		f:        f,
		cfg:      f.CFG(),
		dom:      f.DomTree(),
		evidence: map[string][]eviSite{},
		vns:      map[ir.Value]string{},
		leafID:   map[ir.Value]int{},
		cells:    map[*ir.Instr]*cellInfo{},
		guards:   map[*ir.Instr][]cellGuard{},
	}
}

// stripPtrCasts peels pointer-to-pointer bitcasts: the instrumenter emits
// a fresh i8* view of the checked pointer at every check site.
func stripPtrCasts(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpBitcast || !in.Typ.IsPointer() ||
			!in.Args[0].Type().IsPointer() {
			return v
		}
		v = in.Args[0]
	}
}

// vn returns a canonical value number for v: bitcasts are stripped,
// constants and globals compare by content, getelementptrs compare
// structurally (same base value, same base type, same index values), and
// everything else compares by SSA identity.
func (ea *elideAnalysis) vn(v ir.Value) string {
	v = stripPtrCasts(v)
	if s, ok := ea.vns[v]; ok {
		return s
	}
	var s string
	switch t := v.(type) {
	case *ir.ConstInt:
		s = fmt.Sprintf("ci%d:%d", t.Type().Bits(), t.SignedValue())
	case *ir.ConstNull:
		s = "null"
	case *ir.Global:
		s = "g:" + t.Nm
	case *ir.Function:
		s = "f:" + t.Nm
	case *ir.Instr:
		if t.Op == ir.OpGEP {
			// The base's static type fixes the scaling of each index, so
			// it must participate in the key alongside the index values.
			s = "gep:" + t.Args[0].Type().String()
			for _, a := range t.Args {
				s += "," + ea.vn(a)
			}
		} else {
			s = ea.leaf(v)
		}
	default:
		s = ea.leaf(v)
	}
	ea.vns[v] = s
	return s
}

func (ea *elideAnalysis) leaf(v ir.Value) string {
	id, ok := ea.leafID[v]
	if !ok {
		id = len(ea.leafID)
		ea.leafID[v] = id
	}
	return fmt.Sprintf("v%d", id)
}

// poolConst extracts the constant pool ID of a check call.
func poolConst(in *ir.Instr) (int64, bool) {
	c, ok := in.Args[0].(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	return c.SignedValue(), true
}

func (ea *elideAnalysis) boundsKey(in *ir.Instr) (string, int64, bool) {
	mp, ok := poolConst(in)
	if !ok {
		return "", 0, false
	}
	return fmt.Sprintf("b:%d:%s:%s", mp, ea.vn(in.Args[1]), ea.vn(in.Args[2])), mp, true
}

func (ea *elideAnalysis) lsKey(in *ir.Instr) (string, int64, bool) {
	mp, ok := poolConst(in)
	if !ok {
		return "", 0, false
	}
	return fmt.Sprintf("l:%d:%s", mp, ea.vn(in.Args[1])), mp, true
}

// ---------------------------------------------------------------------------
// Rule R1: identical dominating check with mutation-free paths.

// provenByEvidence reports whether some recorded site for key dominates
// (b2,i2) with no pool mutation on any intervening path.
func (ea *elideAnalysis) provenByEvidence(key string, pool int64, b2 *ir.BasicBlock, i2 int) bool {
	sites := ea.evidence[key]
	for k := len(sites) - 1; k >= 0; k-- {
		e := sites[k]
		if e.b == b2 {
			if e.i < i2 && !ea.killIn(e.b, e.i+1, i2, pool) {
				return true
			}
			continue
		}
		if !ea.dom.Dominates(e.b, b2) {
			continue
		}
		if ea.killIn(e.b, e.i+1, len(e.b.Instrs), pool) {
			continue
		}
		if ok := ea.pathsClean(e.b, b2, i2, pool); ok {
			return true
		}
	}
	return false
}

// pathsClean checks every intervening block on walks from evidence block
// b1 to (b2,i2) that do not re-enter b1 (re-entering b1 re-establishes the
// fact, so only the suffix after the last visit of b1 matters).
func (ea *elideAnalysis) pathsClean(b1, b2 *ir.BasicBlock, i2 int, pool int64) bool {
	inter := interAvoid(ea.cfg, b1, b2)
	for x := range inter {
		if ea.killIn(x, 0, len(x.Instrs), pool) {
			return false
		}
	}
	// If b2 is not on a cycle back to itself avoiding b1, only its prefix
	// before the check matters (the full-block scan above covers the
	// cyclic case).
	if !inter[b2] && ea.killIn(b2, 0, i2, pool) {
		return false
	}
	return true
}

// killIn reports whether instructions [from, to) of b can mutate pool's
// object set.
func (ea *elideAnalysis) killIn(b *ir.BasicBlock, from, to int, pool int64) bool {
	for i := from; i < to && i < len(b.Instrs); i++ {
		if instrKills(b.Instrs[i], pool) {
			return true
		}
	}
	return false
}

// instrKills reports whether in can add or remove objects from pool.
// Registration and drop intrinsics kill their target pool; any call whose
// effects are unknown (non-intrinsic, or a state-manipulation intrinsic
// that may run other code) conservatively kills everything.
func instrKills(in *ir.Instr, pool int64) bool {
	if in.Op != ir.OpCall {
		return false
	}
	name, ok := in.IsIntrinsicCall()
	if !ok {
		return true // unknown callee: may allocate, free or re-register
	}
	switch name {
	case svaops.ObjRegister, svaops.ObjRegisterStack, svaops.ObjDrop:
		if mp, okc := poolConst(in); okc {
			return mp == pool
		}
		return true
	case svaops.BoundsCheck, svaops.LSCheck, svaops.ICCheck,
		svaops.GetBoundsLo, svaops.GetBoundsHi,
		svaops.ElideBounds, svaops.ElideLS,
		svaops.Memcpy, svaops.Memmove, svaops.Memset, svaops.Memcmp:
		// Checks only consult the object sets; the sva.mem* operations
		// move bytes but never (de)register objects.
		return false
	}
	return true // llva.* state ops may context-switch into arbitrary code
}

// interAvoid returns the blocks strictly between b1 and b2: reachable
// from a successor of b1 without passing through b1, and reaching b2
// through at least one edge without passing through b1.  b2 itself is in
// the set exactly when some cycle returns to it while avoiding b1.
func interAvoid(cfg *ir.CFG, b1, b2 *ir.BasicBlock) map[*ir.BasicBlock]bool {
	fwd := map[*ir.BasicBlock]bool{}
	var stack []*ir.BasicBlock
	for _, s := range cfg.Succs[b1] {
		if s != b1 && !fwd[s] {
			fwd[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cfg.Succs[x] {
			if s != b1 && !fwd[s] {
				fwd[s] = true
				stack = append(stack, s)
			}
		}
	}
	bwd := map[*ir.BasicBlock]bool{}
	stack = stack[:0]
	for _, p := range cfg.Preds[b2] {
		if p != b1 && !bwd[p] {
			bwd[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range cfg.Preds[x] {
			if p != b1 && !bwd[p] {
				bwd[p] = true
				stack = append(stack, p)
			}
		}
	}
	inter := map[*ir.BasicBlock]bool{}
	for x := range fwd {
		if bwd[x] {
			inter[x] = true
		}
	}
	return inter
}

// ---------------------------------------------------------------------------
// Rule R2: guarded counted-loop indexing.

// gepGuardSafe reports whether the bounds check's GEP stays within the
// static extent of its base under rule R2: first index zero, struct
// indices in-range constants, and every array index either statically
// bounded or proven in [0, len) by a live counted-loop guard.
func (ea *elideAnalysis) gepGuardSafe(check *ir.Instr) bool {
	g, ok := stripPtrCasts(check.Args[2]).(*ir.Instr)
	if !ok || g.Op != ir.OpGEP {
		return false
	}
	// The check must pair the GEP with its own base: the elision argument
	// is "derived stays within the static extent of base".
	if stripPtrCasts(check.Args[1]) != stripPtrCasts(g.Args[0]) {
		return false
	}
	cur := g.Args[0].Type().Elem()
	for k := 1; k < len(g.Args); k++ {
		idx := g.Args[k]
		if k == 1 {
			c, okc := idx.(*ir.ConstInt)
			if !okc || c.SignedValue() != 0 {
				return false
			}
			continue
		}
		switch cur.Kind() {
		case ir.ArrayKind:
			n := int64(cur.Len())
			if !indexBoundedBy(idx, n) && !ea.cellBound(idx, n) {
				return false
			}
			cur = cur.Elem()
		case ir.StructKind:
			c, okc := idx.(*ir.ConstInt)
			if !okc {
				return false
			}
			fi := c.SignedValue()
			if fi < 0 || fi >= int64(cur.NumFields()) {
				return false
			}
			cur = cur.Field(int(fi))
		default:
			return false
		}
	}
	return true
}

// cellBound reports whether idx is a load of a disciplined induction cell
// whose value some live guard proves to lie in [0, n).
func (ea *elideAnalysis) cellBound(idx ir.Value, n int64) bool {
	ld, ok := idx.(*ir.Instr)
	if !ok || ld.Op != ir.OpLoad {
		return false
	}
	cell, ok := ld.Args[0].(*ir.Instr)
	if !ok || cell.Op != ir.OpAlloca {
		return false
	}
	ci := ea.cellDiscipline(cell)
	if !ci.ok {
		return false
	}
	// Non-negativity: some constant initialization dominates this load.
	if !ea.initDominates(ci, ld) {
		return false
	}
	// Upper bound: a guard with limit <= n is live at the load.
	for _, g := range ea.cellGuards(cell) {
		if g.limit <= n && ea.guardLiveAt(cell, g, ld) {
			return true
		}
	}
	return false
}

// sitePos locates an instruction within its parent block.
func sitePos(in *ir.Instr) (b *ir.BasicBlock, idx int, ok bool) {
	b = in.Parent()
	if b == nil {
		return nil, 0, false
	}
	for i, x := range b.Instrs {
		if x == in {
			return b, i, true
		}
	}
	return nil, 0, false
}

func (ea *elideAnalysis) initDominates(ci *cellInfo, ld *ir.Instr) bool {
	bL, iL, ok := sitePos(ld)
	if !ok {
		return false
	}
	for _, s := range ci.initStores {
		if s.b == bL && s.i < iL {
			return true
		}
		if s.b != bL && ea.dom.Dominates(s.b, bL) {
			return true
		}
	}
	return false
}

// guardLiveAt reports whether guard g's fact (content(cell) < limit on
// entry to g.t) still holds at the load: g.t dominates the load's block
// and no store to the cell appears on any path from the last entry of g.t
// to the load.  Every entry to g.t comes through the guard branch (g.t has
// a unique predecessor), so paths that revisit g.t re-establish the fact.
func (ea *elideAnalysis) guardLiveAt(cell *ir.Instr, g cellGuard, ld *ir.Instr) bool {
	bL, iL, ok := sitePos(ld)
	if !ok {
		return false
	}
	if !ea.dom.Dominates(g.t, bL) {
		return false
	}
	if g.t == bL {
		return !storeToCellIn(bL, 0, iL, cell)
	}
	if storeToCellIn(g.t, 0, len(g.t.Instrs), cell) {
		return false
	}
	inter := interAvoid(ea.cfg, g.t, bL)
	for x := range inter {
		if storeToCellIn(x, 0, len(x.Instrs), cell) {
			return false
		}
	}
	if !inter[bL] && storeToCellIn(bL, 0, iL, cell) {
		return false
	}
	return true
}

func storeToCellIn(b *ir.BasicBlock, from, to int, cell *ir.Instr) bool {
	for i := from; i < to && i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(cell) {
			return true
		}
	}
	return false
}

// cellDiscipline classifies cell's uses and stores; memoized.
func (ea *elideAnalysis) cellDiscipline(cell *ir.Instr) *cellInfo {
	if ci, ok := ea.cells[cell]; ok {
		return ci
	}
	ci := &cellInfo{}
	ea.cells[cell] = ci
	if cell.AllocTy != ir.I64 || len(cell.Args) != 0 {
		return ci
	}
	// Escape analysis: the cell address may only feed direct loads,
	// direct stores (as the address), and the i8* cast the instrumenter
	// passes to stack registration.
	for _, b := range ea.f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				if a != ir.Value(cell) {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && ai == 0:
					ci.loads = append(ci.loads, in)
				case in.Op == ir.OpStore && ai == 1:
					// classified below
				case in.Op == ir.OpBitcast && registrationOnly(ea.f, in):
				default:
					return ci // escapes
				}
			}
			if in.Callee == ir.Value(cell) {
				return ci
			}
		}
	}
	// Store discipline: constant non-negative initializations or guarded
	// constant-step increments.
	for _, b := range ea.f.Blocks {
		for i, in := range b.Instrs {
			if in.Op != ir.OpStore || in.Args[1] != ir.Value(cell) {
				continue
			}
			if c, okc := in.Args[0].(*ir.ConstInt); okc {
				if sv := c.SignedValue(); sv >= 0 && sv < cellLimitMax {
					ci.initStores = append(ci.initStores, eviSite{b, i})
					continue
				}
				return ci
			}
			if ld := incrementOf(in.Args[0], cell); ld != nil {
				ci.incStores = append(ci.incStores, ld)
				continue
			}
			return ci
		}
	}
	// Overflow freedom: each increment's operand load must itself be
	// under some guard (so the written value stays far below 2^63).
	for _, ld := range ci.incStores {
		bounded := false
		for _, g := range ea.cellGuards(cell) {
			if g.limit < cellLimitMax && ea.guardLiveAt(cell, g, ld) {
				bounded = true
				break
			}
		}
		if !bounded {
			return ci
		}
	}
	ci.ok = true
	return ci
}

// incrementOf matches `add (load cell), C` (either operand order) with
// 0 < C <= cellStepMax, returning the load.
func incrementOf(v ir.Value, cell *ir.Instr) *ir.Instr {
	add, ok := v.(*ir.Instr)
	if !ok || add.Op != ir.OpAdd {
		return nil
	}
	var ld *ir.Instr
	var c *ir.ConstInt
	for _, a := range add.Args {
		if in, oki := a.(*ir.Instr); oki && in.Op == ir.OpLoad && in.Args[0] == ir.Value(cell) {
			ld = in
		} else if cc, okc := a.(*ir.ConstInt); okc {
			c = cc
		}
	}
	if ld == nil || c == nil {
		return nil
	}
	if sv := c.SignedValue(); sv <= 0 || sv > cellStepMax {
		return nil
	}
	return ld
}

// registrationOnly reports whether every use of cast is as the pointer
// operand of a stack-registration or drop intrinsic.
func registrationOnly(f *ir.Function, cast *ir.Instr) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				if a != ir.Value(cast) {
					continue
				}
				name, ok := in.IsIntrinsicCall()
				if !ok || ai != 1 || (name != svaops.ObjRegisterStack && name != svaops.ObjDrop) {
					return false
				}
			}
			if in.Callee == ir.Value(cast) {
				return false
			}
		}
	}
	return true
}

// cellGuards collects the loop-header branches guarding cell: a block
// terminated by `condbr (icmp slt|ult (load cell), C), T, F` where the
// compared load reads the cell in the same block with no intervening
// store, T != F, and T's unique predecessor is the guarding block (so
// every entry to T carries the fact).
func (ea *elideAnalysis) cellGuards(cell *ir.Instr) []cellGuard {
	if gs, ok := ea.guards[cell]; ok {
		return gs
	}
	var gs []cellGuard
	for _, h := range ea.f.Blocks {
		if len(h.Instrs) == 0 {
			continue
		}
		br := h.Instrs[len(h.Instrs)-1]
		if br.Op != ir.OpCondBr || len(br.Blocks) != 2 || br.Blocks[0] == br.Blocks[1] {
			continue
		}
		cmp, ok := br.Args[0].(*ir.Instr)
		if !ok || cmp.Op != ir.OpICmp || (cmp.Pred != ir.PredSLT && cmp.Pred != ir.PredULT) {
			continue
		}
		ld, ok := cmp.Args[0].(*ir.Instr)
		if !ok || ld.Op != ir.OpLoad || ld.Args[0] != ir.Value(cell) {
			continue
		}
		c, ok := cmp.Args[1].(*ir.ConstInt)
		if !ok {
			continue
		}
		lim := c.SignedValue()
		if lim <= 0 || lim >= cellLimitMax {
			continue
		}
		// The compared load must read the cell in this block with no
		// store in between, so the fact talks about the branch-time
		// content.
		bL, iL, okp := sitePos(ld)
		if !okp || bL != h || storeToCellIn(h, iL+1, len(h.Instrs), cell) {
			continue
		}
		t := br.Blocks[0]
		if preds := ea.cfg.Preds[t]; len(preds) != 1 || preds[0] != h {
			continue
		}
		gs = append(gs, cellGuard{t: t, limit: lim})
	}
	ea.guards[cell] = gs
	return gs
}
