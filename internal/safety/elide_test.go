package safety

import (
	"testing"

	"sva/internal/ir"
	"sva/internal/svaops"
)

// opCounts tallies intrinsic calls by name in f.
func opCounts(f *ir.Function) map[string]int {
	n := map[string]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if name, ok := in.IsIntrinsicCall(); ok {
				n[name]++
			}
		}
	}
	return n
}

// buildChecked hand-builds a SafetyCompiled function in m so elideFunc can
// be driven directly: emit produces check calls via svaops.Get.
type checkedBuilder struct {
	m *ir.Module
	b *ir.Builder
}

func newCheckedBuilder(t *testing.T) *checkedBuilder {
	t.Helper()
	m := ir.NewModule("elide_t")
	return &checkedBuilder{m: m, b: ir.NewBuilder(m)}
}

func (cb *checkedBuilder) bounds(pool int64, base, derived ir.Value) *ir.Instr {
	bp := cb.b.Bitcast(base, svaops.BytePtr)
	dp := cb.b.Bitcast(derived, svaops.BytePtr)
	return cb.b.Call(svaops.Get(cb.m, svaops.BoundsCheck), ir.NewInt(ir.I32, pool), bp, dp)
}

func (cb *checkedBuilder) ls(pool int64, p ir.Value) *ir.Instr {
	bp := cb.b.Bitcast(p, svaops.BytePtr)
	return cb.b.Call(svaops.Get(cb.m, svaops.LSCheck), ir.NewInt(ir.I32, pool), bp)
}

func (cb *checkedBuilder) finish(f *ir.Function) (int, int) {
	cb.b.Seal()
	f.SafetyCompiled = true
	s := elideFunc(cb.m, f, true)
	return s.bounds(), s.LSR1
}

// TestElideIdenticalDominatingCheck: two checks on the same (pool, value)
// pair in straight-line code — the second is redundant.
func TestElideIdenticalDominatingCheck(t *testing.T) {
	cb := newCheckedBuilder(t)
	at := ir.ArrayOf(8, ir.I64)
	f := cb.b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(at), ir.I64}, false), "a", "i")
	g1 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
	cb.bounds(3, cb.b.Param(0), g1)
	// Recomputed address of the same element: structurally identical GEP.
	g2 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
	cb.bounds(3, cb.b.Param(0), g2)
	cb.b.Ret(nil)
	nb, _ := cb.finish(f)
	if nb != 1 {
		t.Fatalf("elided %d bounds checks, want 1\n%s", nb, f)
	}
	ops := opCounts(f)
	if ops[svaops.BoundsCheck] != 1 || ops[svaops.ElideBounds] != 1 {
		t.Fatalf("op counts %v, want one real and one elided check", ops)
	}
}

// TestElideBlockedByUnknownCall: a call to an unknown function between the
// two checks may free or reallocate — no elision.
func TestElideBlockedByUnknownCall(t *testing.T) {
	cb := newCheckedBuilder(t)
	at := ir.ArrayOf(8, ir.I64)
	ext := cb.m.NewFunc("external", ir.FuncOf(ir.Void, nil, false))
	f := cb.b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(at), ir.I64}, false), "a", "i")
	g1 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
	cb.bounds(3, cb.b.Param(0), g1)
	cb.b.Call(ext)
	g2 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
	cb.bounds(3, cb.b.Param(0), g2)
	cb.b.Ret(nil)
	if nb, _ := cb.finish(f); nb != 0 {
		t.Fatalf("elided %d bounds checks across an unknown call, want 0\n%s", nb, f)
	}
}

// TestElideBlockedByPoolMutation: a drop on the same pool kills the fact;
// a drop on a different pool does not.
func TestElideBlockedByPoolMutation(t *testing.T) {
	for _, tc := range []struct {
		name     string
		dropPool int64
		want     int
	}{
		{"same pool", 3, 0},
		{"other pool", 9, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cb := newCheckedBuilder(t)
			at := ir.ArrayOf(8, ir.I64)
			f := cb.b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(at), ir.I64}, false), "a", "i")
			g1 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
			cb.bounds(3, cb.b.Param(0), g1)
			bp := cb.b.Bitcast(cb.b.Param(0), svaops.BytePtr)
			cb.b.Call(svaops.Get(cb.m, svaops.ObjDrop), ir.NewInt(ir.I32, tc.dropPool), bp)
			g2 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
			cb.bounds(3, cb.b.Param(0), g2)
			cb.b.Ret(nil)
			if nb, _ := cb.finish(f); nb != tc.want {
				t.Fatalf("elided %d bounds checks, want %d\n%s", nb, tc.want, f)
			}
		})
	}
}

// TestElideLSRequiresDominance: an lscheck in one arm of a diamond does
// not justify eliding the check after the join; a check before the branch
// does.
func TestElideLSRequiresDominance(t *testing.T) {
	for _, tc := range []struct {
		name       string
		beforeJoin bool
		want       int
	}{
		{"check in one arm only", false, 0},
		{"check dominates join", true, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cb := newCheckedBuilder(t)
			f := cb.b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(ir.I64), ir.I64}, false), "p", "c")
			if tc.beforeJoin {
				cb.ls(4, cb.b.Param(0))
			}
			thenB := f.NewBlock("then")
			elseB := f.NewBlock("else")
			join := f.NewBlock("join")
			cond := cb.b.ICmp(ir.PredNE, cb.b.Param(1), ir.I64c(0))
			cb.b.CondBr(cond, thenB, elseB)
			cb.b.SetBlock(thenB)
			if !tc.beforeJoin {
				cb.ls(4, cb.b.Param(0))
			}
			cb.b.Br(join)
			cb.b.SetBlock(elseB)
			cb.b.Br(join)
			cb.b.SetBlock(join)
			cb.ls(4, cb.b.Param(0))
			cb.b.Ret(nil)
			if _, nl := cb.finish(f); nl != tc.want {
				t.Fatalf("elided %d ls checks, want %d\n%s", nl, tc.want, f)
			}
		})
	}
}

// TestElideCountedLoopGuard: the builder's For loop produces a guarded
// induction cell; indexing a fixed array with it is provably in bounds
// when the loop limit fits, and not when it exceeds the array.
func TestElideCountedLoopGuard(t *testing.T) {
	for _, tc := range []struct {
		name  string
		limit int64
		want  int
	}{
		{"limit within array", 8, 1},
		{"limit exceeds array", 9, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cb := newCheckedBuilder(t)
			at := ir.ArrayOf(8, ir.I64)
			f := cb.b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(at)}, false), "a")
			cb.b.For("i", ir.I64c(0), ir.I64c(tc.limit), ir.I64c(1), func(i ir.Value) {
				g := cb.b.GEP(cb.b.Param(0), ir.I64c(0), i)
				cb.bounds(3, cb.b.Param(0), g)
				cb.b.Store(ir.I64c(1), g)
			})
			cb.b.Ret(nil)
			if nb, _ := cb.finish(f); nb != tc.want {
				t.Fatalf("elided %d bounds checks, want %d\n%s", nb, tc.want, f)
			}
		})
	}
}

// TestElideGuardKilledByWildStore: a store of a non-constant,
// non-increment value into the induction cell breaks the discipline.
func TestElideGuardKilledByWildStore(t *testing.T) {
	cb := newCheckedBuilder(t)
	at := ir.ArrayOf(8, ir.I64)
	f := cb.b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(at), ir.I64}, false), "a", "x")
	cb.b.For("i", ir.I64c(0), ir.I64c(8), ir.I64c(1), func(i ir.Value) {
		g := cb.b.GEP(cb.b.Param(0), ir.I64c(0), i)
		cb.bounds(3, cb.b.Param(0), g)
	})
	// Reuse the cell for arbitrary data afterwards: the store is outside
	// the loop but still disqualifies the cell's store discipline.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				cb.b.Store(cb.b.Param(1), in)
			}
		}
	}
	cb.b.Ret(nil)
	if nb, _ := cb.finish(f); nb != 0 {
		t.Fatalf("elided %d bounds checks with undisciplined cell, want 0\n%s", nb, f)
	}
}

// TestElideModuleOnRealCompile: compiling the bundled kernel must elide a
// nonzero fraction of bounds checks, and eliding must never produce more
// elisions than insertions.
func TestElideModuleOnRealCompile(t *testing.T) {
	// Exercised end-to-end in internal/kernel tests; here we only check
	// the metric invariants on a small rich module to keep this package's
	// tests hermetic.
	cb := newCheckedBuilder(t)
	at := ir.ArrayOf(4, ir.I64)
	f := cb.b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(at), ir.I64}, false), "a", "i")
	g1 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
	cb.bounds(0, cb.b.Param(0), g1)
	g2 := cb.b.GEP(cb.b.Param(0), ir.I64c(0), cb.b.Param(1))
	cb.bounds(0, cb.b.Param(0), g2)
	cb.b.Ret(nil)
	cb.b.Seal()
	f.SafetyCompiled = true
	s := elideModule(cb.m, true)
	if s.bounds() != 1 || s.LSR1 != 0 {
		t.Fatalf("elideModule = (%d, %d), want (1, 0)", s.bounds(), s.LSR1)
	}
}
