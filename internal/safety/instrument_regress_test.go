package safety

import (
	"testing"

	"sva/internal/ir"
)

// TestGEPProvablySafeRejectsBadFieldIndex regresses the handling of
// malformed constant struct-field indices.  The builder refuses to emit
// such a GEP, but bytecode loaded from outside (or a buggy front end) can
// present one; the analysis must answer "not provably safe" rather than
// index the field list out of range.
func TestGEPProvablySafeRejectsBadFieldIndex(t *testing.T) {
	st := ir.StructOf(ir.I64, ir.I64)
	m := ir.NewModule("regress")
	b := ir.NewBuilder(m)
	f := b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.PointerTo(st)}, false), "p")
	base := b.Param(0)
	b.Ret(nil)
	b.Seal()
	_ = f

	for _, tc := range []struct {
		name string
		fi   ir.Value
	}{
		{"negative field index", ir.NewInt(ir.I32, -1)},
		{"field index past end", ir.NewInt(ir.I32, 2)},
		{"wildly out of range", ir.NewInt(ir.I64, 1<<40)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := &ir.Instr{
				Op:   ir.OpGEP,
				Args: []ir.Value{base, ir.I32c(0), tc.fi},
			}
			if gepProvablySafe(in) {
				t.Errorf("GEP with field index %s judged provably safe", tc.fi.Ident())
			}
		})
	}

	// Sanity: the well-formed sibling is provably safe.
	ok := &ir.Instr{
		Op:   ir.OpGEP,
		Args: []ir.Value{base, ir.I32c(0), ir.I32c(1)},
	}
	if !gepProvablySafe(ok) {
		t.Error("constant in-range field address not judged safe")
	}
}

// TestIndexBoundedBySExt regresses mixed-width index handling: a masked
// narrow index that is sign-extended (the common i32-arithmetic,
// i64-index pattern) is just as bounded as its zero-extended twin,
// because every bounding sub-rule proves a value with the top bit clear.
func TestIndexBoundedBySExt(t *testing.T) {
	m := ir.NewModule("regress")
	b := ir.NewBuilder(m)
	f := b.NewFunc("f", ir.FuncOf(ir.Void, []*ir.Type{ir.I32}, false), "x")
	masked := b.And(b.Param(0), ir.I32c(3))
	sx := b.SExt(masked, ir.I64)
	unmasked := b.SExt(b.Param(0), ir.I64)
	b.Ret(nil)
	b.Seal()
	_ = f

	if !indexBoundedBy(sx, 4) {
		t.Error("sext(x & 3) not bounded by 4")
	}
	if indexBoundedBy(sx, 3) {
		t.Error("sext(x & 3) wrongly bounded by 3")
	}
	if indexBoundedBy(unmasked, 4) {
		t.Error("bare sext(x) wrongly judged bounded")
	}
}
