package safety

import (
	"fmt"
	"sort"
	"strings"

	"sva/internal/ir"
)

// This file implements the two analysis-precision transformations of §4.8:
//
//   - function cloning: "different objects passed into the same function
//     parameter from different call sites appear aliased ... Cloning the
//     function so that different copies are called for the different call
//     sites eliminates this merging";
//   - devirtualization: "with a small enough target set, it is profitable
//     to 'devirtualize' the call ... The current system only performs
//     devirtualization at the indirect call sites where the function
//     signature assertion was added."

// Cloning heuristics (chosen "intuitively", as the paper admits of its own).
const (
	cloneMaxInstrs = 80 // only small functions are worth copying
	cloneMaxCopies = 4  // bound code growth (paper saw < 10% bytecode growth)
)

// cloneForPrecision runs before the pointer analysis: call sites of small
// pointer-taking functions are grouped by the object types of their
// pointer arguments; each extra group gets its own clone.  Returns the
// number of clones created.
func cloneForPrecision(cfg Config, mods []*ir.Module) int {
	excluded := map[string]bool{}
	for _, s := range cfg.Pointer.ExcludeSubsystems {
		excluded[s] = true
	}
	analyzed := func(f *ir.Function) bool {
		return !f.IsDecl() && !(f.Subsystem != "" && excluded[f.Subsystem])
	}

	// Collect direct call sites per callee.
	type site struct {
		in  *ir.Instr
		key string
	}
	sites := map[*ir.Function][]site{}
	for _, m := range mods {
		for _, caller := range m.Funcs {
			if !analyzed(caller) {
				continue
			}
			for _, b := range caller.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpCall {
						continue
					}
					callee, ok := in.Callee.(*ir.Function)
					if !ok || callee.Intrinsic || !analyzed(callee) || callee == caller {
						continue
					}
					if callee.NumInstrs() == 0 {
						callee.Renumber()
					}
					if callee.NumInstrs() > cloneMaxInstrs {
						continue
					}
					k := argTypeKey(in)
					if k == "" {
						continue // no pointer arguments: nothing to split
					}
					sites[callee] = append(sites[callee], site{in: in, key: k})
				}
			}
		}
	}

	callees := make([]*ir.Function, 0, len(sites))
	for f := range sites {
		callees = append(callees, f)
	}
	sort.Slice(callees, func(i, j int) bool { return callees[i].Nm < callees[j].Nm })

	clones := 0
	for _, f := range callees {
		ss := sites[f]
		groups := map[string][]*ir.Instr{}
		var order []string
		for _, s := range ss {
			if _, ok := groups[s.key]; !ok {
				order = append(order, s.key)
			}
			groups[s.key] = append(groups[s.key], s.in)
		}
		if len(order) < 2 {
			continue
		}
		sort.Strings(order)
		// The first group keeps the original; each further group (up to the
		// cap) gets a clone.
		for gi, key := range order[1:] {
			if gi >= cloneMaxCopies {
				break
			}
			name := fmt.Sprintf("%s.clone%d", f.Nm, gi+1)
			if f.Mod.Func(name) != nil {
				continue
			}
			nf := ir.CloneFunction(f.Mod, f, name)
			f.NumClones++
			clones++
			for _, in := range groups[key] {
				in.Callee = nf
			}
		}
	}
	return clones
}

// argTypeKey summarizes the object types behind a call's pointer arguments
// ("" if it passes no typed pointers).
func argTypeKey(in *ir.Instr) string {
	var parts []string
	typed := false
	for _, a := range in.Args {
		t := a.Type()
		if !t.IsPointer() {
			continue
		}
		ot := objectType(a)
		parts = append(parts, ot.String())
		if ot != ir.I8 && !ot.IsVoid() {
			typed = true
		}
	}
	if !typed {
		return ""
	}
	return strings.Join(parts, "|")
}

// objectType looks through casts to the best-known element type of a
// pointer argument.
func objectType(v ir.Value) *ir.Type {
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			break
		}
		if in.Op == ir.OpBitcast && in.Args[0].Type().IsPointer() {
			src := in.Args[0].Type().Elem()
			if src != ir.I8 {
				v = in.Args[0]
				continue
			}
		}
		break
	}
	if v.Type().IsPointer() {
		return v.Type().Elem()
	}
	return ir.Void
}
