package safety

import (
	"fmt"
	"strings"

	"sva/internal/ir"
)

// AccessMetrics classifies one access category (loads, stores, struct
// indexing, array indexing) the way Table 9 of the paper does: the fraction
// of static accesses touching incomplete partitions and the fraction
// touching type-safe (type-homogeneous) partitions.
type AccessMetrics struct {
	Total      int
	Incomplete int
	TypeSafe   int
}

// PctIncomplete returns the incomplete fraction in percent.
func (a AccessMetrics) PctIncomplete() float64 { return pct(a.Incomplete, a.Total) }

// PctTypeSafe returns the type-safe fraction in percent.
func (a AccessMetrics) PctTypeSafe() float64 { return pct(a.TypeSafe, a.Total) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// Metrics are the static measurements of Table 9 plus check-insertion
// counts.
type Metrics struct {
	// AllocSitesTotal counts allocation sites in the whole kernel;
	// AllocSitesSeen counts those in safety-compiled code.
	AllocSitesTotal int
	AllocSitesSeen  int

	Loads     AccessMetrics
	Stores    AccessMetrics
	StructIdx AccessMetrics
	ArrayIdx  AccessMetrics

	// Check-insertion accounting.  Elided counts are included in the
	// Inserted totals: an elided check is an inserted site the §7.1.3
	// redundancy pass rewrote to a pchk.elide.* annotation.
	BoundsChecksInserted int
	BoundsChecksElided   int
	GEPsProvenSafe       int
	LSChecksInserted     int
	LSChecksElided       int
	ICChecksInserted     int
	ObjRegistrations     int
	StackRegistrations   int
	PromotedAllocas      int
	// §4.8 precision transformations.
	ClonesCreated int
	Devirtualized int
}

// PctAllocSitesSeen returns the allocation-site coverage in percent.
func (m Metrics) PctAllocSitesSeen() float64 { return pct(m.AllocSitesSeen, m.AllocSitesTotal) }

// collectMetrics computes the Table 9 static metrics over all modules.
func (p *Program) collectMetrics() {
	var m Metrics
	isAllocName := map[string]bool{}
	for _, al := range p.cfg.Pointer.Allocators {
		isAllocName[al.Name] = true
	}
	for _, mod := range p.Modules {
		for _, f := range mod.Funcs {
			if f.IsDecl() {
				continue
			}
			analyzed := p.Res.Analyzed(f)
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					// Allocation-site coverage counts every module.
					if isAllocSite(in, isAllocName) {
						m.AllocSitesTotal++
						if analyzed {
							m.AllocSitesSeen++
						}
					}
					if !analyzed {
						continue
					}
					switch in.Op {
					case ir.OpLoad:
						p.classify(&m.Loads, in.Args[0])
					case ir.OpStore:
						p.classify(&m.Stores, in.Args[1])
					case ir.OpGEP:
						if isStructIndexing(in) {
							p.classify(&m.StructIdx, in.Args[0])
						} else {
							p.classify(&m.ArrayIdx, in.Args[0])
						}
						if gepProvablySafe(in) {
							m.GEPsProvenSafe++
						}
					case ir.OpCall:
						name, ok := in.IsIntrinsicCall()
						if !ok {
							break
						}
						switch name {
						case "pchk.bounds":
							m.BoundsChecksInserted++
						case "pchk.elide.bounds":
							m.BoundsChecksInserted++
							m.BoundsChecksElided++
						case "pchk.lscheck":
							m.LSChecksInserted++
						case "pchk.elide.ls":
							m.LSChecksInserted++
							m.LSChecksElided++
						case "pchk.iccheck":
							m.ICChecksInserted++
						case "pchk.reg.obj":
							m.ObjRegistrations++
						case "pchk.reg.stack":
							m.StackRegistrations++
						}
					}
				}
			}
		}
	}
	p.Metrics = m
}

// classify buckets one access by its pointer's partition.
func (p *Program) classify(am *AccessMetrics, ptr ir.Value) {
	am.Total++
	id := p.Pool(ptr)
	if id < 0 {
		am.Incomplete++ // unanalyzed pointer: worst case
		return
	}
	d := p.Descs[id]
	if !d.Complete {
		am.Incomplete++
	}
	if d.TypeHomogeneous {
		am.TypeSafe++
	}
}

// isStructIndexing reports whether a GEP performs struct-field selection
// (as opposed to array/pointer indexing).
func isStructIndexing(in *ir.Instr) bool {
	cur := in.Args[0].Type().Elem()
	for k := 2; k < len(in.Args); k++ {
		if cur.Kind() == ir.StructKind {
			return true
		}
		if cur.Kind() == ir.ArrayKind {
			cur = cur.Elem()
			continue
		}
		break
	}
	return cur.Kind() == ir.StructKind && len(in.Args) >= 3
}

func isAllocSite(in *ir.Instr, allocNames map[string]bool) bool {
	if in.Op == ir.OpAlloca {
		return false // Table 9 counts dynamic allocation sites
	}
	if in.Op != ir.OpCall {
		return false
	}
	f, ok := in.Callee.(*ir.Function)
	return ok && allocNames[f.Nm]
}

// String renders the metrics in the shape of Table 9.
func (m Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Allocation sites seen: %.1f%% (%d/%d)\n",
		m.PctAllocSitesSeen(), m.AllocSitesSeen, m.AllocSitesTotal)
	row := func(name string, a AccessMetrics) {
		fmt.Fprintf(&sb, "%-18s total=%-6d incomplete=%5.1f%%  type-safe=%5.1f%%\n",
			name, a.Total, a.PctIncomplete(), a.PctTypeSafe())
	}
	row("Loads", m.Loads)
	row("Stores", m.Stores)
	row("Structure Indexing", m.StructIdx)
	row("Array Indexing", m.ArrayIdx)
	return sb.String()
}
