package safety

import (
	"sva/internal/ir"
	"sva/internal/svaops"
	"sva/internal/telemetry"
)

// AccessMetrics classifies one access category (loads, stores, struct
// indexing, array indexing) the way Table 9 of the paper does.  The schema
// (and its Table-9 rendering) lives in the telemetry package so the static
// metrics publish into unified snapshots alongside the run-time counters.
type AccessMetrics = telemetry.AccessStats

// Metrics are the static measurements of Table 9 plus check-insertion
// counts.
type Metrics = telemetry.StaticStats

// Attach registers the program's static metrics as a telemetry source:
// unified snapshots of a safety-compiled system carry the Table-9 block.
func (p *Program) Attach(reg *telemetry.Registry) {
	reg.Register(func(s *telemetry.Snapshot) {
		m := p.Metrics
		s.Static = &m
	})
}

// collectMetrics computes the Table 9 static metrics over all modules.
func (p *Program) collectMetrics() {
	var m Metrics
	isAllocName := map[string]bool{}
	for _, al := range p.cfg.Pointer.Allocators {
		isAllocName[al.Name] = true
	}
	for _, mod := range p.Modules {
		for _, f := range mod.Funcs {
			if f.IsDecl() {
				continue
			}
			analyzed := p.Res.Analyzed(f)
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					// Allocation-site coverage counts every module.
					if isAllocSite(in, isAllocName) {
						m.AllocSitesTotal++
						if analyzed {
							m.AllocSitesSeen++
						}
					}
					if !analyzed {
						continue
					}
					switch in.Op {
					case ir.OpLoad:
						p.classify(&m.Loads, in.Args[0])
					case ir.OpStore:
						p.classify(&m.Stores, in.Args[1])
					case ir.OpGEP:
						if isStructIndexing(in) {
							p.classify(&m.StructIdx, in.Args[0])
						} else {
							p.classify(&m.ArrayIdx, in.Args[0])
						}
						if gepProvablySafe(in) {
							m.GEPsProvenSafe++
						}
					case ir.OpCall:
						name, ok := in.IsIntrinsicCall()
						if !ok {
							break
						}
						switch name {
						case svaops.BoundsCheck:
							m.BoundsChecksInserted++
						case svaops.ElideBounds:
							m.BoundsChecksInserted++
							m.BoundsChecksElided++
						case svaops.LSCheck:
							m.LSChecksInserted++
						case svaops.ElideLS:
							m.LSChecksInserted++
							m.LSChecksElided++
						case svaops.ICCheck:
							m.ICChecksInserted++
						case svaops.ObjRegister:
							m.ObjRegistrations++
						case svaops.ObjRegisterStack:
							m.StackRegistrations++
						}
					}
				}
			}
		}
	}
	p.Metrics = m
}

// classify buckets one access by its pointer's partition.
func (p *Program) classify(am *AccessMetrics, ptr ir.Value) {
	am.Total++
	id := p.Pool(ptr)
	if id < 0 {
		am.Incomplete++ // unanalyzed pointer: worst case
		return
	}
	d := p.Descs[id]
	if !d.Complete {
		am.Incomplete++
	}
	if d.TypeHomogeneous {
		am.TypeSafe++
	}
}

// isStructIndexing reports whether a GEP performs struct-field selection
// (as opposed to array/pointer indexing).
func isStructIndexing(in *ir.Instr) bool {
	cur := in.Args[0].Type().Elem()
	for k := 2; k < len(in.Args); k++ {
		if cur.Kind() == ir.StructKind {
			return true
		}
		if cur.Kind() == ir.ArrayKind {
			cur = cur.Elem()
			continue
		}
		break
	}
	return cur.Kind() == ir.StructKind && len(in.Args) >= 3
}

func isAllocSite(in *ir.Instr, allocNames map[string]bool) bool {
	if in.Op == ir.OpAlloca {
		return false // Table 9 counts dynamic allocation sites
	}
	if in.Op != ir.OpCall {
		return false
	}
	f, ok := in.Callee.(*ir.Function)
	return ok && allocNames[f.Nm]
}
