package safety

import (
	"fmt"
	"testing"

	"sva/internal/ir"
	"sva/internal/svaops"
)

// cloneModule: zero_init is called with two distinct object types; without
// cloning, both objects merge into one collapsed partition.
func cloneModule() *ir.Module {
	m := ir.NewModule("clone")
	addTestAllocator(m)
	bp := svaops.BytePtr
	ta := ir.NamedStruct("cl_task_t")
	ta.SetBody(ir.I64, ir.I64)
	tb := ir.NamedStruct("cl_inode_t")
	tb.SetBody(ir.I32, ir.I32, ir.I32, ir.I32)

	b := ir.NewBuilder(m)
	// zero_init(p): writes the first 16 bytes (the merge-inducing helper).
	b.NewFunc("zero_init", ir.FuncOf(ir.Void, []*ir.Type{bp}, false), "p")
	b.For("i", ir.I64c(0), ir.I64c(16), ir.I64c(1), func(i ir.Value) {
		b.Store(ir.I8c(0), b.GEP(b.Param(0), i))
	})
	b.Ret(nil)

	b.NewFunc("make_task", ir.FuncOf(ir.PointerTo(ta), nil, false))
	raw := b.Call(m.Func("kmalloc"), ir.I64c(16))
	tp := b.Bitcast(raw, ir.PointerTo(ta))
	b.Call(m.Func("zero_init"), b.Bitcast(tp, svaops.BytePtr))
	b.Store(ir.I64c(1), b.FieldAddr(tp, 0))
	b.Ret(tp)

	b.NewFunc("make_inode", ir.FuncOf(ir.PointerTo(tb), nil, false))
	raw2 := b.Call(m.Func("kmalloc"), ir.I64c(16))
	ip0 := b.Bitcast(raw2, ir.PointerTo(tb))
	b.Call(m.Func("zero_init"), b.Bitcast(ip0, svaops.BytePtr))
	b.Store(ir.I32c(2), b.FieldAddr(ip0, 0))
	b.Ret(ip0)
	return m
}

func TestCloningSplitsMergedPartitions(t *testing.T) {
	// With cloning disabled, zero_init merges tasks and inodes: since
	// kmalloc(16) puts both in the same size-class kernel pool anyway,
	// check the partition's type homogeneity instead of identity.
	mOff := cloneModule()
	cfgOff := testCfg()
	cfgOff.DisableCloning = true
	pOff, err := Compile(cfgOff, mOff)
	if err != nil {
		t.Fatal(err)
	}
	if pOff.Metrics.ClonesCreated != 0 {
		t.Fatalf("cloning ran while disabled")
	}

	mOn := cloneModule()
	pOn, err := Compile(testCfg(), mOn)
	if err != nil {
		t.Fatal(err)
	}
	if pOn.Metrics.ClonesCreated == 0 {
		t.Fatal("cloning heuristic found no candidates")
	}
	if mOn.Func("zero_init.clone1") == nil {
		t.Fatal("clone not materialized")
	}
	if errs := ir.VerifyModule(mOn); len(errs) != 0 {
		t.Fatalf("cloned module does not verify: %v", errs[0])
	}
}

func TestCloneFunctionSemantics(t *testing.T) {
	m := ir.NewModule("clonesem")
	b := ir.NewBuilder(m)
	f := b.NewFunc("tri", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "n")
	acc := b.Alloca(ir.I64, "acc")
	b.Store(ir.I64c(0), acc)
	b.For("i", ir.I64c(1), b.Add(b.Param(0), ir.I64c(1)), ir.I64c(1), func(i ir.Value) {
		b.Store(b.Add(b.Load(acc), i), acc)
	})
	b.Ret(b.Load(acc))
	nf := ir.CloneFunction(m, f, "tri.copy")
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("clone does not verify: %v", errs[0])
	}
	if nf.NumInstrs() != f.NumInstrs() || len(nf.Blocks) != len(f.Blocks) {
		t.Errorf("clone shape differs: %d/%d instrs, %d/%d blocks",
			nf.NumInstrs(), f.NumInstrs(), len(nf.Blocks), len(f.Blocks))
	}
	// No instruction of the clone may reference the original's values.
	orig := map[ir.Value]bool{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			orig[in] = true
		}
	}
	for _, p := range f.Params {
		orig[p] = true
	}
	for _, blk := range nf.Blocks {
		for _, in := range blk.Instrs {
			for _, a := range in.Args {
				if orig[a] {
					t.Fatalf("clone references original value %s", a.Ident())
				}
			}
		}
	}
}

func TestDevirtualization(t *testing.T) {
	build := func() (*ir.Module, *ir.Instr) {
		m := ir.NewModule("devirt")
		addTestAllocator(m)
		sig := ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false)
		b := ir.NewBuilder(m)
		b.NewFunc("only_target", sig, "x")
		b.Ret(b.Add(b.Param(0), ir.I64c(1)))
		fp := m.NewGlobal("fp", ir.PointerTo(sig), &ir.GlobalAddr{G: m.Func("only_target")})
		df := b.NewFunc("dispatch", ir.FuncOf(ir.I64, nil, false))
		loaded := b.Load(fp)
		call := b.Call(loaded, ir.I64c(41))
		b.Ret(call)
		df.Renumber()
		df.SigAssert = map[int]bool{call.Num(): true}
		return m, call
	}

	m, call := build()
	p, err := Compile(testCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Metrics.Devirtualized != 1 {
		t.Fatalf("devirtualized = %d, want 1", p.Metrics.Devirtualized)
	}
	if f, ok := call.Callee.(*ir.Function); !ok || f.Nm != "only_target" {
		t.Fatalf("call not rewritten to direct: callee = %v", call.Callee)
	}
	if p.Metrics.ICChecksInserted != 0 {
		t.Errorf("devirtualized site still got an indirect-call check")
	}
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("devirtualized module does not verify: %v", errs[0])
	}

	// Ablation: with devirtualization off, the same site keeps its check.
	m2, call2 := build()
	cfg := testCfg()
	cfg.DisableDevirt = true
	p2, err := Compile(cfg, m2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Metrics.Devirtualized != 0 {
		t.Error("devirtualization ran while disabled")
	}
	if _, ok := call2.Callee.(*ir.Function); ok {
		t.Error("call rewritten despite DisableDevirt")
	}
	if p2.Metrics.ICChecksInserted != 1 {
		t.Errorf("ic checks = %d, want 1", p2.Metrics.ICChecksInserted)
	}
}

// TestSigAssertShrinksCalleeSets mirrors the paper's §4.8 observation that
// call-site signature assertions cut callee sets dramatically: a dispatch
// table mixing many signatures resolves to only the matching ones at an
// asserted site.
func TestSigAssertShrinksCalleeSets(t *testing.T) {
	build := func(assert bool) (int, error) {
		m := ir.NewModule("sigshrink")
		addTestAllocator(m)
		b := ir.NewBuilder(m)
		sigA := ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false)
		// Ten functions; only three match sigA.
		var fns []ir.Constant
		for i := 0; i < 3; i++ {
			f := b.NewFunc(fmt.Sprintf("match%d", i), sigA, "x")
			b.Ret(b.Param(0))
			fns = append(fns, &ir.GlobalAddr{G: f})
		}
		sigB := ir.FuncOf(ir.I64, []*ir.Type{ir.I64, ir.I64}, false)
		for i := 0; i < 7; i++ {
			f := b.NewFunc(fmt.Sprintf("other%d", i), sigB, "x", "y")
			b.Ret(b.Param(0))
			fns = append(fns, &ir.GlobalAddr{G: f})
		}
		bp := svaops.BytePtr
		tbl := m.NewGlobal("mixed_tbl", ir.ArrayOf(10, bp), &ir.ConstArray{
			Typ: ir.ArrayOf(10, bp), Elems: fns,
		})
		df := b.NewFunc("dispatch", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "i")
		fp0 := b.Load(b.Index(tbl, b.Param(0)))
		fp := b.Bitcast(fp0, ir.PointerTo(sigA))
		call := b.Call(fp, ir.I64c(7))
		b.Ret(call)
		df.Renumber()
		if assert {
			df.SigAssert = map[int]bool{call.Num(): true}
		}
		p, err := Compile(testCfg(), m)
		if err != nil {
			return 0, err
		}
		return len(p.Res.Callees(call)), nil
	}
	without, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	with, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	if without != 10 {
		t.Errorf("unasserted callee set = %d, want 10", without)
	}
	if with != 3 {
		t.Errorf("asserted callee set = %d, want 3 (signature-matching only)", with)
	}
}
