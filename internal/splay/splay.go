// Package splay implements the address-range splay tree that SVA's
// run-time checks use to record registered memory objects (paper §4.1,
// §4.5).  Each metapool owns one tree; bounds checks and load-store checks
// look up the object containing a pointer value.  Splaying moves recently
// checked objects to the root, which is what made the extended Jones–Kelly
// bounds checking practical in SAFECode.
package splay

import "fmt"

// Range is a registered object: the half-open address interval
// [Start, Start+Len).
type Range struct {
	Start uint64
	Len   uint64
	// Tag carries caller data (e.g. the kernel allocation site).
	Tag uint32
}

// End returns the exclusive end address.
func (r Range) End() uint64 { return r.Start + r.Len }

// Contains reports whether addr falls inside the range.
func (r Range) Contains(addr uint64) bool { return addr >= r.Start && addr < r.End() }

func (r Range) String() string { return fmt.Sprintf("[%#x,%#x)", r.Start, r.End()) }

type node struct {
	r           Range
	left, right *node
}

// Tree is a top-down splay tree of non-overlapping address ranges keyed by
// start address.  The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	size int
	// free chains recycled nodes through their left pointers.  Stack
	// objects register and drop once per kernel trap, so node turnover is
	// the hottest allocation in the whole check path; the free list keeps
	// it off the host allocator.  Bounded by the tree's peak size.
	free *node

	// Lookups counts Find operations (run-time check accounting).
	Lookups uint64
}

// newNode hands out a recycled node or a fresh one.
func (t *Tree) newNode(r Range) *node {
	if n := t.free; n != nil {
		t.free = n.left
		n.r = r
		n.left, n.right = nil, nil
		return n
	}
	return &node{r: r}
}

// freeNode returns a detached node to the free list.
func (t *Tree) freeNode(n *node) {
	n.right = nil
	n.left = t.free
	t.free = n
}

// Len returns the number of registered ranges.
func (t *Tree) Len() int { return t.size }

// splay moves the node whose range contains key — or the last node on the
// search path — to the root.  Standard top-down splaying.
func (t *Tree) splay(key uint64) {
	if t.root == nil {
		return
	}
	var header node
	l, r := &header, &header
	cur := t.root
	for {
		if key < cur.r.Start {
			if cur.left == nil {
				break
			}
			if key < cur.left.r.Start {
				// rotate right
				y := cur.left
				cur.left = y.right
				y.right = cur
				cur = y
				if cur.left == nil {
					break
				}
			}
			r.left = cur
			r = cur
			cur = cur.left
		} else if key >= cur.r.End() {
			if cur.right == nil {
				break
			}
			if key >= cur.right.r.End() {
				// rotate left
				y := cur.right
				cur.right = y.left
				y.left = cur
				cur = y
				if cur.right == nil {
					break
				}
			}
			l.right = cur
			l = cur
			cur = cur.right
		} else {
			break // cur contains key
		}
	}
	l.right = cur.left
	r.left = cur.right
	cur.left = header.right
	cur.right = header.left
	t.root = cur
}

// Insert registers a range.  It returns false (and leaves the tree
// unchanged) if the range overlaps an existing one or has zero length.
func (t *Tree) Insert(r Range) bool {
	if r.Len == 0 {
		return false
	}
	if r.Start+r.Len < r.Start {
		return false // address wraparound
	}
	if t.root == nil {
		t.root = t.newNode(r)
		t.size++
		return true
	}
	t.splay(r.Start)
	// After splaying, root is the closest range.  Check overlap with root
	// and with the neighbor on the other side.
	if rangesOverlap(t.root.r, r) {
		return false
	}
	n := t.newNode(r)
	if r.Start < t.root.r.Start {
		// Check the rightmost node of root.left for overlap.
		if t.root.left != nil {
			p := t.root.left
			for p.right != nil {
				p = p.right
			}
			if rangesOverlap(p.r, r) {
				return false
			}
		}
		n.left = t.root.left
		n.right = t.root
		t.root.left = nil
	} else {
		if t.root.right != nil {
			p := t.root.right
			for p.left != nil {
				p = p.left
			}
			if rangesOverlap(p.r, r) {
				return false
			}
		}
		n.right = t.root.right
		n.left = t.root
		t.root.right = nil
	}
	t.root = n
	t.size++
	return true
}

func rangesOverlap(a, b Range) bool {
	return a.Start < b.End() && b.Start < a.End()
}

// Find returns the range containing addr, splaying it to the root.
func (t *Tree) Find(addr uint64) (Range, bool) {
	t.Lookups++
	if t.root == nil {
		return Range{}, false
	}
	t.splay(addr)
	if t.root.r.Contains(addr) {
		return t.root.r, true
	}
	return Range{}, false
}

// FindStart returns the range that starts exactly at addr.
func (t *Tree) FindStart(addr uint64) (Range, bool) {
	r, ok := t.Find(addr)
	if !ok || r.Start != addr {
		return Range{}, false
	}
	return r, true
}

// Remove deletes the range containing addr, returning it.
func (t *Tree) Remove(addr uint64) (Range, bool) {
	if t.root == nil {
		return Range{}, false
	}
	t.splay(addr)
	if !t.root.r.Contains(addr) {
		return Range{}, false
	}
	dead := t.root
	removed := dead.r
	if t.root.left == nil {
		t.root = t.root.right
	} else {
		right := t.root.right
		t.root = t.root.left
		t.splay(addr) // splays max of left subtree to root
		t.root.right = right
	}
	t.size--
	t.freeNode(dead)
	return removed, true
}

// FindOverlap returns some range overlapping [start, start+length).  It is
// used on the registration-conflict path only, so a linear fallback is
// acceptable.
func (t *Tree) FindOverlap(start, length uint64) (Range, bool) {
	if r, ok := t.Find(start); ok {
		return r, true
	}
	var hit Range
	found := false
	t.Walk(func(r Range) bool {
		if r.Start < start+length && start < r.End() {
			hit = r
			found = true
			return false
		}
		return r.Start < start+length
	})
	return hit, found
}

// OverlapRanges returns up to max ranges overlapping [start, start+length),
// in ascending start order, WITHOUT splaying.  The page-map invalidation
// protocol uses it to recompute a page node after a free: it must see every
// object on the page but may not reshape the tree (the read path holds no
// lock on the tree structure beyond the pool mutex, and a read-only query
// keeps the oracle comparison honest).  Ranges never overlap each other, so
// subtrees entirely left of start or right of end can be pruned.
func (t *Tree) OverlapRanges(start, length uint64, max int) []Range {
	end := start + length
	if end < start { // wraparound: clamp to the address-space top
		end = ^uint64(0)
	}
	var out []Range
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if n == nil {
			return true
		}
		// Children are strictly ordered by start and ranges are disjoint,
		// so a node ending at or before start rules out its left subtree,
		// and one starting at or after end rules out its right subtree.
		if n.r.End() > start {
			if !rec(n.left) {
				return false
			}
		}
		if n.r.Start < end && n.r.End() > start {
			out = append(out, n.r)
			if max > 0 && len(out) >= max {
				return false
			}
		}
		if n.r.Start < end {
			return rec(n.right)
		}
		return true
	}
	rec(t.root)
	return out
}

// Walk visits every range in ascending start order.  The visit function
// returns false to stop early.
func (t *Tree) Walk(visit func(Range) bool) {
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if n == nil {
			return true
		}
		if !rec(n.left) {
			return false
		}
		if !visit(n.r) {
			return false
		}
		return rec(n.right)
	}
	rec(t.root)
}

// MutateNth applies f to the k-th range in ascending start order,
// mutating the node in place and returning the pre-mutation range.  It
// deliberately bypasses every structural invariant Insert maintains: it is
// the fault-injection seam metapools use to model corrupted check metadata
// (a flipped bit in a splay node), and has no legitimate caller on the
// check path.
func (t *Tree) MutateNth(k int, f func(*Range)) (Range, bool) {
	var hit *node
	i := 0
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if n == nil {
			return true
		}
		if !rec(n.left) {
			return false
		}
		if i == k {
			hit = n
			return false
		}
		i++
		return rec(n.right)
	}
	rec(t.root)
	if hit == nil {
		return Range{}, false
	}
	old := hit.r
	f(&hit.r)
	return old, true
}

// Clear removes all ranges.
func (t *Tree) Clear() {
	t.root = nil
	t.size = 0
}

// ClearRecycle removes all ranges and returns every node to the free list.
// Pool resets use it so a guest that tears down and re-creates a pool
// (microreboot, pool_destroy/pool_create cycles) reuses the old tree's
// nodes instead of re-paying the allocation cost of growing it back.
func (t *Tree) ClearRecycle() {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		l, r := n.left, n.right
		t.freeNode(n)
		rec(l)
		rec(r)
	}
	rec(t.root)
	t.root = nil
	t.size = 0
}

// Overlaps reports whether a and b share at least one address.
func (a Range) Overlaps(b Range) bool { return rangesOverlap(a, b) }

// Depth returns the tree's current height (0 for an empty tree).  Splaying
// reshapes the tree on every lookup, so this is a point-in-time gauge for
// telemetry, not a stable property.
func (t *Tree) Depth() int {
	var rec func(n *node) int
	rec = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := rec(n.left), rec(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(t.root)
}
