package splay

import "testing"

// TestMutateNth: the fault-injection seam must hit exactly the k-th range
// in start order, return the pre-mutation copy, and report false for
// out-of-range indices without touching the tree.
func TestMutateNth(t *testing.T) {
	var tr Tree
	for _, start := range []uint64{0x3000, 0x1000, 0x2000} {
		if !tr.Insert(Range{Start: start, Len: 16}) {
			t.Fatalf("insert %#x failed", start)
		}
	}

	old, ok := tr.MutateNth(1, func(r *Range) { r.Len = 1 << 20 })
	if !ok || old.Start != 0x2000 || old.Len != 16 {
		t.Fatalf("MutateNth(1) = %v, %v; want pre-mutation [0x2000,+16)", old, ok)
	}
	if got, ok := tr.FindStart(0x2000); !ok || got.Len != 1<<20 {
		t.Errorf("mutation not applied in place: %v, %v", got, ok)
	}
	if got, ok := tr.FindStart(0x1000); !ok || got.Len != 16 {
		t.Errorf("neighbour damaged: %v, %v", got, ok)
	}

	for _, k := range []int{-1, 3, 100} {
		if _, ok := tr.MutateNth(k, func(r *Range) { r.Len = 0 }); ok {
			t.Errorf("MutateNth(%d) reported a hit on a 3-node tree", k)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("tree size changed: %d", tr.Len())
	}
}
