package splay

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertFind(t *testing.T) {
	var tr Tree
	if !tr.Insert(Range{Start: 100, Len: 16}) {
		t.Fatal("insert failed")
	}
	if !tr.Insert(Range{Start: 200, Len: 8}) {
		t.Fatal("insert failed")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, addr := range []uint64{100, 107, 115} {
		r, ok := tr.Find(addr)
		if !ok || r.Start != 100 {
			t.Errorf("Find(%d) = %v, %v", addr, r, ok)
		}
	}
	for _, addr := range []uint64{99, 116, 199, 208, 0} {
		if _, ok := tr.Find(addr); ok {
			t.Errorf("Find(%d) unexpectedly succeeded", addr)
		}
	}
	if r, ok := tr.Find(207); !ok || r.Start != 200 {
		t.Errorf("Find(207) = %v, %v", r, ok)
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	var tr Tree
	tr.Insert(Range{Start: 100, Len: 16})
	overlaps := []Range{
		{Start: 100, Len: 16}, // identical
		{Start: 90, Len: 11},  // crosses start
		{Start: 115, Len: 2},  // crosses end
		{Start: 104, Len: 4},  // inside
		{Start: 90, Len: 100}, // encloses
	}
	for _, r := range overlaps {
		if tr.Insert(r) {
			t.Errorf("Insert(%v) should have been rejected", r)
		}
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after rejected inserts", tr.Len())
	}
	// Adjacent (touching) ranges are fine.
	if !tr.Insert(Range{Start: 116, Len: 4}) {
		t.Error("adjacent range rejected")
	}
	if !tr.Insert(Range{Start: 96, Len: 4}) {
		t.Error("adjacent range rejected")
	}
}

func TestInsertRejectsDegenerate(t *testing.T) {
	var tr Tree
	if tr.Insert(Range{Start: 5, Len: 0}) {
		t.Error("zero-length range accepted")
	}
	if tr.Insert(Range{Start: ^uint64(0) - 1, Len: 10}) {
		t.Error("wrapping range accepted")
	}
}

func TestRemove(t *testing.T) {
	var tr Tree
	for i := 0; i < 10; i++ {
		tr.Insert(Range{Start: uint64(i * 100), Len: 50})
	}
	r, ok := tr.Remove(325) // inside [300,350)
	if !ok || r.Start != 300 {
		t.Fatalf("Remove(325) = %v, %v", r, ok)
	}
	if _, ok := tr.Find(325); ok {
		t.Error("removed range still found")
	}
	if tr.Len() != 9 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Remove(325); ok {
		t.Error("double remove succeeded")
	}
	// All others still present.
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if _, ok := tr.Find(uint64(i*100) + 10); !ok {
			t.Errorf("range %d missing after unrelated remove", i)
		}
	}
}

func TestFindStart(t *testing.T) {
	var tr Tree
	tr.Insert(Range{Start: 64, Len: 32})
	if _, ok := tr.FindStart(64); !ok {
		t.Error("FindStart(64) failed")
	}
	if _, ok := tr.FindStart(65); ok {
		t.Error("FindStart(65) should fail: interior pointer is not object start")
	}
}

func TestWalkOrdered(t *testing.T) {
	var tr Tree
	starts := []uint64{500, 100, 300, 200, 400}
	for _, s := range starts {
		tr.Insert(Range{Start: s, Len: 10})
	}
	var got []uint64
	tr.Walk(func(r Range) bool {
		got = append(got, r.Start)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("Walk order = %v", got)
	}
	if len(got) != 5 {
		t.Errorf("Walk visited %d ranges", len(got))
	}
	// Early stop.
	n := 0
	tr.Walk(func(Range) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestClear(t *testing.T) {
	var tr Tree
	tr.Insert(Range{Start: 1, Len: 1})
	tr.Clear()
	if tr.Len() != 0 {
		t.Error("Clear did not empty the tree")
	}
	if _, ok := tr.Find(1); ok {
		t.Error("Find succeeded after Clear")
	}
}

// refModel is a trivially correct reference: a slice of ranges.
type refModel []Range

func (m refModel) find(addr uint64) (Range, bool) {
	for _, r := range m {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Range{}, false
}

func (m refModel) overlaps(r Range) bool {
	for _, x := range m {
		if rangesOverlap(x, r) {
			return true
		}
	}
	return false
}

// TestQuickAgainstReference drives random operation sequences against the
// splay tree and the reference model and checks they agree.
func TestQuickAgainstReference(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree
		var ref refModel
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				r := Range{Start: uint64(rng.Intn(1000)), Len: uint64(1 + rng.Intn(20))}
				got := tr.Insert(r)
				want := !ref.overlaps(r) && r.Len > 0
				if got != want {
					t.Logf("seed %d: Insert(%v) = %v, want %v", seed, r, got, want)
					return false
				}
				if got {
					ref = append(ref, r)
				}
			case 2: // find
				addr := uint64(rng.Intn(1100))
				gr, gok := tr.Find(addr)
				wr, wok := ref.find(addr)
				if gok != wok || (gok && gr != wr) {
					t.Logf("seed %d: Find(%d) = %v,%v want %v,%v", seed, addr, gr, gok, wr, wok)
					return false
				}
			case 3: // remove
				addr := uint64(rng.Intn(1100))
				gr, gok := tr.Remove(addr)
				wr, wok := ref.find(addr)
				if gok != wok || (gok && gr != wr) {
					t.Logf("seed %d: Remove(%d) = %v,%v want %v,%v", seed, addr, gr, gok, wr, wok)
					return false
				}
				if wok {
					for i, x := range ref {
						if x == wr {
							ref = append(ref[:i], ref[i+1:]...)
							break
						}
					}
				}
			}
			if tr.Len() != len(ref) {
				t.Logf("seed %d: Len = %d, want %d", seed, tr.Len(), len(ref))
				return false
			}
		}
		// Final sweep: every model range findable at every boundary.
		for _, r := range ref {
			if got, ok := tr.Find(r.Start); !ok || got != r {
				return false
			}
			if got, ok := tr.Find(r.End() - 1); !ok || got != r {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkFindHot(b *testing.B) {
	var tr Tree
	for i := 0; i < 1000; i++ {
		tr.Insert(Range{Start: uint64(i * 64), Len: 48})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Hot lookup of the same object: the splay-to-root case that makes
		// per-pool trees fast in SAFECode.
		tr.Find(32000 + 16)
	}
}

func BenchmarkFindUniform(b *testing.B) {
	var tr Tree
	for i := 0; i < 1000; i++ {
		tr.Insert(Range{Start: uint64(i * 64), Len: 48})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Find(uint64((i * 2654435761) % 64000))
	}
}
