package bytecode

import (
	"fmt"
	"math"

	"sva/internal/ir"
)

// Encode serializes a module to its binary bytecode form.
func Encode(m *ir.Module) ([]byte, error) {
	w := &writer{}
	w.buf.Write(Magic[:])
	w.str(m.Name)

	// Collect all types.
	tt := newTypeTable()
	collectConst := func(c ir.Constant) {}
	_ = collectConst
	var collectInit func(c ir.Constant)
	collectInit = func(c ir.Constant) {
		switch c := c.(type) {
		case *ir.ConstInt:
			tt.add(c.Typ)
		case *ir.ConstNull:
			tt.add(c.Typ)
		case *ir.ConstUndef:
			tt.add(c.Typ)
		case *ir.ConstArray:
			tt.add(c.Typ)
			for _, e := range c.Elems {
				collectInit(e)
			}
		case *ir.ConstStruct:
			tt.add(c.Typ)
			for _, f := range c.Fields {
				collectInit(f)
			}
		}
	}
	for _, g := range m.Globals {
		tt.add(g.ValueType)
		if g.Init != nil {
			collectInit(g.Init)
		}
	}
	for _, f := range m.Funcs {
		tt.add(f.Sig)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				tt.add(in.Typ)
				if in.AllocTy != nil {
					tt.add(in.AllocTy)
				}
				for _, a := range in.Args {
					if c, ok := a.(ir.Constant); ok {
						collectInit(c)
					}
					tt.add(a.Type())
				}
			}
		}
	}
	for _, d := range m.Metapools {
		if d.ElemType != nil {
			tt.add(d.ElemType)
		}
	}
	tt.encode(w)

	enc := &encoder{w: w, tt: tt, globals: map[*ir.Global]int{}, funcs: map[*ir.Function]int{}}
	for i, g := range m.Globals {
		enc.globals[g] = i
	}
	for i, f := range m.Funcs {
		enc.funcs[f] = i
	}

	// Globals.
	w.u64(uint64(len(m.Globals)))
	for _, g := range m.Globals {
		w.str(g.Nm)
		w.u64(uint64(tt.index[g.ValueType]))
		w.bool(g.Const)
		w.str(g.Pool)
		w.str(g.Subsystem)
		if g.Init == nil {
			w.bool(false)
		} else {
			w.bool(true)
			if err := encodeInit(enc, g.Init); err != nil {
				return nil, err
			}
		}
	}

	// Functions.
	w.u64(uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		f.Renumber()
		w.str(f.Nm)
		w.u64(uint64(tt.index[f.Sig]))
		w.bool(f.Intrinsic)
		w.bool(f.External)
		w.bool(f.SafetyCompiled)
		w.str(f.Subsystem)
		w.str(f.RetPool)
		for _, p := range f.Params {
			w.str(p.Nm)
			w.str(p.Pool)
		}
		w.u64(uint64(len(f.Blocks)))
		blockIdx := map[*ir.BasicBlock]int{}
		for i, b := range f.Blocks {
			blockIdx[b] = i
		}
		for _, b := range f.Blocks {
			w.str(b.Nm)
			w.u64(uint64(len(b.Instrs)))
			for _, in := range b.Instrs {
				if err := encodeInstr(enc, f, blockIdx, in); err != nil {
					return nil, fmt.Errorf("@%s: %w", f.Nm, err)
				}
			}
		}
	}

	// Metapool descriptors.
	w.u64(uint64(len(m.Metapools)))
	for _, d := range m.Metapools {
		w.str(d.Name)
		w.bool(d.TypeHomogeneous)
		w.bool(d.Complete)
		w.bool(d.UserSpace)
		w.str(d.Pointee)
		if d.ElemType != nil {
			w.bool(true)
			w.u64(uint64(tt.index[d.ElemType]))
		} else {
			w.bool(false)
		}
	}

	// Indirect-call sets.
	w.u64(uint64(len(m.CallSets)))
	for _, set := range m.CallSets {
		w.u64(uint64(len(set)))
		for _, name := range set {
			w.str(name)
		}
	}
	return w.buf.Bytes(), nil
}

func encodeInit(e *encoder, c ir.Constant) error {
	switch c := c.(type) {
	case *ir.ConstArray:
		e.w.u64(100)
		e.w.u64(uint64(e.tt.index[c.Typ]))
		e.w.u64(uint64(len(c.Elems)))
		for _, el := range c.Elems {
			if err := encodeInit(e, el); err != nil {
				return err
			}
		}
		return nil
	case *ir.ConstStruct:
		e.w.u64(101)
		e.w.u64(uint64(e.tt.index[c.Typ]))
		e.w.u64(uint64(len(c.Fields)))
		for _, fl := range c.Fields {
			if err := encodeInit(e, fl); err != nil {
				return err
			}
		}
		return nil
	case *ir.ConstString:
		e.w.u64(opdConstString)
		e.w.str(c.S)
		return nil
	default:
		return e.operand(nil, c)
	}
}

func encodeInstr(e *encoder, f *ir.Function, blockIdx map[*ir.BasicBlock]int, in *ir.Instr) error {
	e.w.u64(uint64(in.Op))
	e.w.u64(uint64(e.tt.index[in.Typ]))
	e.w.str(in.Nm)
	e.w.str(in.Pool)
	e.w.u64(uint64(in.Pred))
	e.w.u64(uint64(in.RMW))
	if in.AllocTy != nil {
		e.w.bool(true)
		e.w.u64(uint64(e.tt.index[in.AllocTy]))
	} else {
		e.w.bool(false)
	}
	if in.Callee != nil {
		e.w.bool(true)
		if err := e.operand(f, in.Callee); err != nil {
			return err
		}
	} else {
		e.w.bool(false)
	}
	e.w.u64(uint64(len(in.Args)))
	for _, a := range in.Args {
		if err := e.operand(f, a); err != nil {
			return err
		}
	}
	e.w.u64(uint64(len(in.Blocks)))
	for _, b := range in.Blocks {
		e.w.u64(uint64(blockIdx[b]))
	}
	return nil
}

// typeAt reads a type index and bounds-checks it.
func typeAt(types []*ir.Type, r *reader) (*ir.Type, error) {
	i := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if i >= uint64(len(types)) {
		return nil, fmt.Errorf("bytecode: type index %d out of range", i)
	}
	return types[i], nil
}

// Decode deserializes a module from bytecode.
func Decode(data []byte) (*ir.Module, error) {
	r := &reader{b: data}
	if len(data) < 4 || data[0] != Magic[0] || data[1] != Magic[1] || data[2] != Magic[2] || data[3] != Magic[3] {
		return nil, fmt.Errorf("bytecode: bad magic")
	}
	r.off = 4
	name := r.str()
	types, err := decodeTypes(r)
	if err != nil {
		return nil, err
	}
	ty := func() *ir.Type {
		i := int(r.u64())
		if r.err == nil && (i < 0 || i >= len(types)) {
			r.err = fmt.Errorf("bytecode: type index %d out of range", i)
			return ir.Void
		}
		if r.err != nil {
			return ir.Void
		}
		return types[i]
	}

	m := ir.NewModule(name)

	// Globals (headers first; initializers reference globals/functions).
	ng := r.count()
	if r.err != nil {
		return nil, r.err
	}
	type ginit struct {
		g    *ir.Global
		init bool
	}
	// We must decode inline, but initializers may reference later globals
	// and functions.  Two-phase: remember byte offsets?  Simpler: globals'
	// initializers can only reference globals/functions by index; decode
	// them after the function headers exist.  To keep a single pass, we
	// decode initializers into a deferred list of raw references.
	var globals []*ir.Global
	var deferredInits []func() error
	for i := 0; i < ng; i++ {
		g := &ir.Global{Nm: r.str()}
		if r.err != nil {
			return nil, r.err
		}
		if m.Global(g.Nm) != nil {
			return nil, fmt.Errorf("bytecode: duplicate global %q", g.Nm)
		}
		g.ValueType = ty()
		g.Const = r.bool()
		g.Pool = r.str()
		g.Subsystem = r.str()
		hasInit := r.bool()
		if hasInit {
			// Decode now: initializer operands reference globals/funcs by
			// index into tables we haven't fully built.  Capture via a
			// placeholder decode that records indices.
			init, err := decodeInitDeferred(r, types, &globals, m)
			if err != nil {
				return nil, err
			}
			gg := g
			deferredInits = append(deferredInits, func() error {
				c, err := init()
				if err != nil {
					return err
				}
				gg.Init = c
				return nil
			})
		}
		m.AddGlobal(g)
		globals = append(globals, g)
		if r.err != nil {
			return nil, r.err
		}
	}

	// Function headers.
	nf := r.count()
	if r.err != nil {
		return nil, r.err
	}
	type fnBody struct {
		f      *ir.Function
		blocks []blockData
	}
	var bodies []fnBody
	var funcs []*ir.Function
	for i := 0; i < nf; i++ {
		fname := r.str()
		sig := ty()
		if r.err != nil {
			return nil, r.err
		}
		if !sig.IsFunc() {
			return nil, fmt.Errorf("bytecode: function %q has non-function type %s", fname, sig)
		}
		if m.Func(fname) != nil {
			return nil, fmt.Errorf("bytecode: duplicate function %q", fname)
		}
		f := m.NewFunc(fname, sig)
		f.Intrinsic = r.bool()
		f.External = r.bool()
		f.SafetyCompiled = r.bool()
		f.Subsystem = r.str()
		f.RetPool = r.str()
		for _, p := range f.Params {
			p.Nm = r.str()
			p.Pool = r.str()
		}
		nb := r.count()
		body := fnBody{f: f}
		for j := 0; j < nb; j++ {
			bd := blockData{name: r.str()}
			ni := r.count()
			for k := 0; k < ni; k++ {
				id, err := decodeInstrData(r, types)
				if err != nil {
					return nil, err
				}
				bd.instrs = append(bd.instrs, id)
			}
			body.blocks = append(body.blocks, bd)
		}
		bodies = append(bodies, body)
		funcs = append(funcs, f)
		if r.err != nil {
			return nil, r.err
		}
	}

	// Materialize bodies.
	for _, body := range bodies {
		if err := materialize(body.f, body.blocks, types, globals, funcs); err != nil {
			return nil, fmt.Errorf("@%s: %w", body.f.Nm, err)
		}
	}
	for _, fn := range deferredInits {
		if err := fn(); err != nil {
			return nil, err
		}
	}

	// Metapools.
	nmp := r.count()
	for i := 0; i < nmp; i++ {
		d := &ir.MetapoolDesc{Name: r.str()}
		d.TypeHomogeneous = r.bool()
		d.Complete = r.bool()
		d.UserSpace = r.bool()
		d.Pointee = r.str()
		if r.bool() {
			d.ElemType = ty()
		}
		if r.err != nil {
			return nil, r.err
		}
		m.Metapools = append(m.Metapools, d)
	}
	// Call sets.
	ncs := r.count()
	for i := 0; i < ncs; i++ {
		nn := r.count()
		set := make([]string, nn)
		for j := 0; j < nn; j++ {
			set[j] = r.str()
		}
		m.CallSets = append(m.CallSets, set)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// decodeInitDeferred parses an initializer, deferring global/function
// resolution until all symbols exist.
func decodeInitDeferred(r *reader, types []*ir.Type, globals *[]*ir.Global, m *ir.Module) (func() (ir.Constant, error), error) {
	tag := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	switch tag {
	case 100, 101:
		t, terr := typeAt(types, r)
		if terr != nil {
			return nil, terr
		}
		n := r.count()
		var subs []func() (ir.Constant, error)
		for i := 0; i < n; i++ {
			s, err := decodeInitDeferred(r, types, globals, m)
			if err != nil {
				return nil, err
			}
			subs = append(subs, s)
		}
		isArray := tag == 100
		return func() (ir.Constant, error) {
			elems := make([]ir.Constant, len(subs))
			for i, s := range subs {
				var err error
				if elems[i], err = s(); err != nil {
					return nil, err
				}
			}
			if isArray {
				return &ir.ConstArray{Typ: t, Elems: elems}, nil
			}
			return &ir.ConstStruct{Typ: t, Fields: elems}, nil
		}, nil
	case opdConstString:
		s := r.str()
		return func() (ir.Constant, error) { return &ir.ConstString{S: s}, nil }, nil
	case opdConstInt:
		t, terr := typeAt(types, r)
		if terr != nil {
			return nil, terr
		}
		v := r.u64()
		return func() (ir.Constant, error) { return &ir.ConstInt{Typ: t, V: v}, nil }, nil
	case opdConstFloat:
		v := r.u64()
		return func() (ir.Constant, error) { return &ir.ConstFloat{F: math.Float64frombits(v)}, nil }, nil
	case opdConstNull:
		t, terr := typeAt(types, r)
		if terr != nil || !t.IsPointer() {
			return nil, fmt.Errorf("bytecode: bad null type")
		}
		return func() (ir.Constant, error) { return ir.Null(t), nil }, nil
	case opdConstUndef:
		t, terr := typeAt(types, r)
		if terr != nil {
			return nil, terr
		}
		return func() (ir.Constant, error) { return &ir.ConstUndef{Typ: t}, nil }, nil
	case opdGlobalAddrG:
		i := int(r.u64())
		return func() (ir.Constant, error) {
			if i >= len(*globals) {
				return nil, fmt.Errorf("bytecode: global index %d out of range", i)
			}
			return &ir.GlobalAddr{G: (*globals)[i]}, nil
		}, nil
	case opdGlobalAddrF:
		i := int(r.u64())
		return func() (ir.Constant, error) {
			if i >= len(m.Funcs) {
				return nil, fmt.Errorf("bytecode: function index %d out of range", i)
			}
			return &ir.GlobalAddr{G: m.Funcs[i]}, nil
		}, nil
	}
	return nil, fmt.Errorf("bytecode: bad initializer tag %d", tag)
}

// blockData / instrData are the raw decoded forms before materialization.
type blockData struct {
	name   string
	instrs []instrData
}

type operandData struct {
	tag uint64
	a   uint64
	b   uint64
}

type instrData struct {
	op      ir.Op
	typ     *ir.Type
	name    string
	pool    string
	pred    ir.Pred
	rmw     ir.RMWOp
	allocTy *ir.Type
	callee  *operandData
	args    []operandData
	blocks  []int
}

func decodeInstrData(r *reader, types []*ir.Type) (instrData, error) {
	var id instrData
	id.op = ir.Op(r.u64())
	ti := int(r.u64())
	if r.err == nil && ti < len(types) {
		id.typ = types[ti]
	}
	id.name = r.str()
	id.pool = r.str()
	id.pred = ir.Pred(r.u64())
	id.rmw = ir.RMWOp(r.u64())
	if r.bool() {
		ati := int(r.u64())
		if r.err == nil && (ati < 0 || ati >= len(types)) {
			return id, fmt.Errorf("bytecode: alloc type index out of range")
		}
		if r.err == nil {
			id.allocTy = types[ati]
		}
	}
	if r.bool() {
		od, err := decodeOperand(r, types)
		if err != nil {
			return id, err
		}
		id.callee = &od
	}
	na := r.count()
	for i := 0; i < na; i++ {
		od, err := decodeOperand(r, types)
		if err != nil {
			return id, err
		}
		id.args = append(id.args, od)
	}
	nb := r.count()
	for i := 0; i < nb; i++ {
		id.blocks = append(id.blocks, int(r.u64()))
	}
	return id, r.err
}

func decodeOperand(r *reader, types []*ir.Type) (operandData, error) {
	var od operandData
	od.tag = r.u64()
	switch od.tag {
	case opdConstInt:
		od.a = r.u64()
		od.b = r.u64()
	case opdConstFloat:
		od.a = r.u64()
	case opdConstNull, opdConstUndef:
		od.a = r.u64()
	case opdGlobal, opdFunc, opdParam, opdInstr, opdGlobalAddrG, opdGlobalAddrF:
		od.a = r.u64()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("bytecode: bad operand tag %d", od.tag)
		}
	}
	return od, r.err
}

// materialize rebuilds a function body from decoded data.
func materialize(f *ir.Function, blocks []blockData, types []*ir.Type, globals []*ir.Global, funcs []*ir.Function) error {
	bbs := make([]*ir.BasicBlock, len(blocks))
	for i, bd := range blocks {
		bbs[i] = f.NewBlock(bd.name)
	}
	// First create all instructions (so instr references resolve), then
	// wire operands.
	var all []*ir.Instr
	for bi, bd := range blocks {
		for _, id := range bd.instrs {
			in := &ir.Instr{
				Op: id.op, Typ: id.typ, Nm: id.name, Pool: id.pool,
				Pred: id.pred, RMW: id.rmw, AllocTy: id.allocTy,
			}
			for _, bidx := range id.blocks {
				if bidx < 0 || bidx >= len(bbs) {
					return fmt.Errorf("block index %d out of range", bidx)
				}
				in.Blocks = append(in.Blocks, bbs[bidx])
			}
			bbs[bi].Append(in)
			all = append(all, in)
		}
	}
	f.Renumber()
	resolve := func(od operandData, types []*ir.Type) (ir.Value, error) {
		tyAt := func(i uint64) (*ir.Type, error) {
			if i >= uint64(len(types)) {
				return nil, fmt.Errorf("type index %d out of range", i)
			}
			return types[i], nil
		}
		switch od.tag {
		case opdConstInt:
			t, err := tyAt(od.a)
			if err != nil {
				return nil, err
			}
			return &ir.ConstInt{Typ: t, V: od.b}, nil
		case opdConstFloat:
			return &ir.ConstFloat{F: math.Float64frombits(od.a)}, nil
		case opdConstNull:
			t, err := tyAt(od.a)
			if err != nil || !t.IsPointer() {
				return nil, fmt.Errorf("bad null type")
			}
			return ir.Null(t), nil
		case opdConstUndef:
			t, err := tyAt(od.a)
			if err != nil {
				return nil, err
			}
			return &ir.ConstUndef{Typ: t}, nil
		case opdGlobal:
			if int(od.a) >= len(globals) {
				return nil, fmt.Errorf("global index %d out of range", od.a)
			}
			return globals[od.a], nil
		case opdFunc, opdGlobalAddrF:
			if int(od.a) >= len(funcs) {
				return nil, fmt.Errorf("function index %d out of range", od.a)
			}
			if od.tag == opdGlobalAddrF {
				return &ir.GlobalAddr{G: funcs[od.a]}, nil
			}
			return funcs[od.a], nil
		case opdGlobalAddrG:
			if int(od.a) >= len(globals) {
				return nil, fmt.Errorf("global index %d out of range", od.a)
			}
			return &ir.GlobalAddr{G: globals[od.a]}, nil
		case opdParam:
			if int(od.a) >= len(f.Params) {
				return nil, fmt.Errorf("param index %d out of range", od.a)
			}
			return f.Params[od.a], nil
		case opdInstr:
			if int(od.a) >= len(all) {
				return nil, fmt.Errorf("instr index %d out of range", od.a)
			}
			return all[od.a], nil
		}
		return nil, fmt.Errorf("bad operand tag %d", od.tag)
	}
	idx := 0
	for _, bd := range blocks {
		for _, id := range bd.instrs {
			in := all[idx]
			idx++
			if id.callee != nil {
				v, err := resolve(*id.callee, types)
				if err != nil {
					return err
				}
				in.Callee = v
			}
			for _, od := range id.args {
				v, err := resolve(od, types)
				if err != nil {
					return err
				}
				in.Args = append(in.Args, v)
			}
		}
	}
	return nil
}
