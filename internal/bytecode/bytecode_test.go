package bytecode

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sva/internal/hw"
	"sva/internal/ir"
	"sva/internal/kernel"
	"sva/internal/safety"
	"sva/internal/svaops"
	"sva/internal/svaos"
	"sva/internal/typecheck"
	"sva/internal/vm"
)

// sampleModule builds a module exercising every encodable construct.
func sampleModule() *ir.Module {
	m := ir.NewModule("sample")
	task := ir.NamedStruct("bc_task_t")
	task.SetBody(ir.I64, ir.PointerTo(task), ir.ArrayOf(4, ir.I8))
	m.NewGlobal("counter", ir.I64, ir.I64c(42))
	m.NewGlobal("msg", ir.ArrayOf(6, ir.I8), &ir.ConstString{S: "hello"})
	m.NewGlobal("pi", ir.F64, &ir.ConstFloat{F: 3.14159})
	m.NewGlobal("head", ir.PointerTo(task), ir.Null(ir.PointerTo(task)))
	sig := ir.FuncOf(ir.I64, []*ir.Type{ir.I64, ir.PointerTo(task)}, false)
	b := ir.NewBuilder(m)
	f := b.NewFunc("touch", sig, "n", "t")
	f.Subsystem = "core"
	pid := b.FieldAddr(b.Param(1), 0)
	old := b.Load(pid)
	b.Store(b.Param(0), pid)
	cond := b.ICmp(ir.PredSGT, old, ir.I64c(0))
	b.IfElse(cond, func() {
		b.Ret(old)
	}, func() {
		x := b.Alloca(ir.I64, "x")
		b.Store(b.Mul(b.Param(0), ir.I64c(2)), x)
		b.Ret(b.Load(x))
	})
	b.Seal() // both arms returned; the join block is dead
	// A function using switch, phi via select, atomics and intrinsic calls.
	b.NewFunc("misc", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "v")
	g := m.Global("counter")
	oldv := b.AtomicRMW(ir.RMWAdd, g, ir.I64c(1))
	cas := b.CmpXchg(g, ir.I64c(5), ir.I64c(6))
	sel := b.Select(b.ICmp(ir.PredEQ, cas, oldv), ir.I64c(1), ir.I64c(0))
	b.Fence()
	b.Call(svaops.Get(m, svaops.Halt), ir.I64c(0))
	one := b.Block("one")
	two := b.Block("two")
	done := b.Block("done")
	b.Switch(b.Param(0), done, []*ir.ConstInt{ir.I64c(1), ir.I64c(2)}, []*ir.BasicBlock{one, two})
	b.SetBlock(one)
	b.Br(done)
	b.SetBlock(two)
	b.Br(done)
	b.SetBlock(done)
	b.Ret(b.Add(oldv, sel))
	// Table of function pointers in an initializer.
	fpt := ir.PointerTo(sig)
	m.NewGlobal("tbl", ir.ArrayOf(1, fpt), &ir.ConstArray{
		Typ:   ir.ArrayOf(1, fpt),
		Elems: []ir.Constant{&ir.GlobalAddr{G: f}},
	})
	// Metadata.
	m.Metapools = append(m.Metapools,
		&ir.MetapoolDesc{Name: "MP0", TypeHomogeneous: true, Complete: true, ElemType: task, Pointee: "MP0"},
		&ir.MetapoolDesc{Name: "MP1", Complete: false, UserSpace: true},
	)
	m.CallSets = append(m.CallSets, []string{"touch", "misc"})
	return m
}

func TestRoundTrip(t *testing.T) {
	m := sampleModule()
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		t.Fatalf("sample does not verify: %v", errs[0])
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if errs := ir.VerifyModule(m2); len(errs) != 0 {
		t.Fatalf("decoded module does not verify: %v", errs[0])
	}
	// The textual forms must be identical — a strong structural equality.
	if m.String() != m2.String() {
		t.Errorf("round trip mismatch:\n--- original ---\n%s\n--- decoded ---\n%s", m, m2)
	}
	// And a re-encode must be byte-identical (canonical form).
	data2, err := Encode(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding is not canonical")
	}
}

func TestDecodedModuleExecutes(t *testing.T) {
	m := sampleModule()
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(hw.NewMachine(0, 16), vm.ConfigSVALLVM)
	if err := v.LoadModule(m2, false); err != nil {
		t.Fatal(err)
	}
	f := v.FuncByName("touch")
	top, _ := v.AllocKernelStack(16 * 1024)
	// t = null → field write faults; pass a fake task in memory instead.
	taskAddr := uint64(0x9000_0000)
	ex, _ := v.NewExec(f, []uint64{7, taskAddr}, top, hw.PrivKernel)
	v.SetExec(ex)
	got, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 { // old pid 0 → else branch returns n*2
		t.Errorf("touch(7) = %d, want 14", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not bytecode")); err == nil {
		t.Error("garbage accepted")
	}
	m := sampleModule()
	data, _ := Encode(m)
	// Truncations must error, not panic.
	for _, cut := range []int{5, len(data) / 4, len(data) / 2, len(data) - 3} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeTruncationNeverPanics(t *testing.T) {
	m := sampleModule()
	data, _ := Encode(m)
	err := quick.Check(func(cut uint16) bool {
		n := int(cut) % len(data)
		defer func() {
			if recover() != nil {
				t.Errorf("panic at truncation %d", n)
			}
		}()
		Decode(data[:n])
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSignedTranslationCache(t *testing.T) {
	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = byte(i)
	}
	signer, err := NewSigner(seed)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(signer)
	m := sampleModule()
	image, _ := Encode(m)

	if e, err := cache.Get(image, "sva-safe"); e != nil || err != nil {
		t.Fatalf("empty cache Get = %v, %v", e, err)
	}
	cache.Put(image, []byte("native-code-blob"), "sva-safe")
	e, err := cache.Get(image, "sva-safe")
	if err != nil || e == nil {
		t.Fatalf("Get after Put = %v, %v", e, err)
	}
	if string(e.Translation) != "native-code-blob" {
		t.Error("translation corrupted")
	}
	// Tampering with the cached translation must be detected.
	e.Translation[0] ^= 0xFF
	if _, err := cache.Get(image, "sva-safe"); err == nil {
		t.Error("tampered translation accepted")
	}
	// The corrupt entry is evicted.
	if e2, err := cache.Get(image, "sva-safe"); e2 != nil || err != nil {
		t.Errorf("corrupt entry not evicted: %v, %v", e2, err)
	}
	// An entry for different bytecode must not verify.
	cache.Put(image, []byte("blob"), "sva-safe")
	other := append([]byte(nil), image...)
	other[len(other)-1] ^= 1
	if e3, _ := cache.Get(other, "sva-safe"); e3 != nil {
		t.Error("cache returned translation for different bytecode")
	}
}

func TestSignerSeedValidation(t *testing.T) {
	if _, err := NewSigner([]byte("short")); err == nil {
		t.Error("bad seed size accepted")
	}
	if _, err := NewSigner(nil); err != nil {
		t.Errorf("random signer: %v", err)
	}
}

func TestHashStability(t *testing.T) {
	m := sampleModule()
	d1, _ := Encode(m)
	d2, _ := Encode(sampleModule())
	if Hash(d1) != Hash(d2) {
		t.Error("identical modules hash differently")
	}
}

// TestKernelRoundTrip encodes the entire safety-compiled guest kernel to
// bytecode, decodes it, verifies it and boots it — the full "ship the
// kernel as bytecode" path of §2.
func TestKernelRoundTrip(t *testing.T) {
	img := kernel.Build()
	if _, err := safety.Compile(kernel.SafetyConfig(true), img.Kernel); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(img.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kernel bytecode: %d bytes", len(data))
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if errs := ir.VerifyModule(decoded); len(errs) != 0 {
		t.Fatalf("decoded kernel does not verify: %v", errs[0])
	}
	if errs := typecheck.New(decoded.Metapools).Check(decoded); len(errs) != 0 {
		t.Fatalf("decoded kernel fails the metapool type check: %v", errs[0])
	}
	// Boot the DECODED kernel.
	v := vm.New(hw.NewMachine(0, 64), vm.ConfigSafe)
	svaos.Install(v)
	if err := v.LoadModule(decoded, false); err != nil {
		t.Fatal(err)
	}
	top, _ := v.AllocKernelStack(64 * 1024)
	ex, err := v.NewExec(v.FuncByName("kernel_entry"), []uint64{top}, top, hw.PrivKernel)
	if err != nil {
		t.Fatal(err)
	}
	v.SetExec(ex)
	v.StepBudget = 50_000_000
	if _, err := v.Run(); err != nil {
		t.Fatalf("decoded kernel failed to boot: %v", err)
	}
	if out := v.Mach.Console.Output(); !strings.Contains(out, "SVA vkernel booted") {
		t.Errorf("console = %q", out)
	}
}

func TestDetachedFileSignature(t *testing.T) {
	signer, err := NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	image, _ := Encode(sampleModule())
	blob := signer.SignFile(image)
	if err := VerifyFile(image, blob); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	// Tampered image fails.
	bad := append([]byte(nil), image...)
	bad[10] ^= 1
	if err := VerifyFile(bad, blob); err == nil {
		t.Error("tampered image accepted")
	}
	// Tampered signature fails.
	blob2 := append([]byte(nil), blob...)
	blob2[len(blob2)-1] ^= 1
	if err := VerifyFile(image, blob2); err == nil {
		t.Error("tampered signature accepted")
	}
	// Malformed blob fails.
	if err := VerifyFile(image, blob[:10]); err == nil {
		t.Error("short blob accepted")
	}
}
