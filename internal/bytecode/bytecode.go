// Package bytecode implements the on-disk form of SVA modules: a compact
// binary encoding of the typed IR (the "bytecode" files the SVM verifies
// and translates, §3.1), plus the signed native-translation cache of §3.4
// ("the translated native code is cached on disk together with the
// bytecode, and the pair is digitally signed together").
package bytecode

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"sva/internal/ir"
)

// Magic identifies SVA bytecode files.
var Magic = [4]byte{'S', 'V', 'A', 1}

type writer struct {
	buf bytes.Buffer
}

func (w *writer) u64(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) bool(b bool) {
	if b {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("bytecode: truncated uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := int(r.u64())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("bytecode: truncated string at %d", r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// count reads an element count and validates it against the remaining
// input so corrupted lengths cannot trigger huge allocations.
func (r *reader) count() int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off)+1 {
		r.err = fmt.Errorf("bytecode: count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.err = fmt.Errorf("bytecode: truncated bool at %d", r.off)
		return false
	}
	v := r.b[r.off]
	r.off++
	return v != 0
}

// --- type table -----------------------------------------------------------

type typeTable struct {
	types []*ir.Type
	index map[*ir.Type]int
}

func newTypeTable() *typeTable {
	return &typeTable{index: map[*ir.Type]int{}}
}

// add interns t (recursively) and returns its index.
func (tt *typeTable) add(t *ir.Type) int {
	if i, ok := tt.index[t]; ok {
		return i
	}
	// Reserve the slot first so recursive types terminate.
	i := len(tt.types)
	tt.types = append(tt.types, t)
	tt.index[t] = i
	switch t.Kind() {
	case ir.PointerKind, ir.ArrayKind:
		tt.add(t.Elem())
	case ir.StructKind:
		for _, f := range t.Fields() {
			tt.add(f)
		}
	case ir.FuncKind:
		tt.add(t.Ret())
		for _, p := range t.Params() {
			tt.add(p)
		}
	}
	return i
}

func (tt *typeTable) encode(w *writer) {
	w.u64(uint64(len(tt.types)))
	for _, t := range tt.types {
		w.u64(uint64(t.Kind()))
		switch t.Kind() {
		case ir.IntKind:
			w.u64(uint64(t.Bits()))
		case ir.PointerKind, ir.ArrayKind:
			if t.Kind() == ir.ArrayKind {
				w.u64(uint64(t.Len()))
			}
			w.u64(uint64(tt.index[t.Elem()]))
		case ir.StructKind:
			w.str(t.StructName())
			w.u64(uint64(t.NumFields()))
			for _, f := range t.Fields() {
				w.u64(uint64(tt.index[f]))
			}
		case ir.FuncKind:
			w.u64(uint64(tt.index[t.Ret()]))
			w.u64(uint64(len(t.Params())))
			for _, p := range t.Params() {
				w.u64(uint64(tt.index[p]))
			}
			w.bool(t.Variadic())
		}
	}
}

// decodeTypes rebuilds the type table, re-interning through the ir package
// so pointer identity holds.
func decodeTypes(r *reader) ([]*ir.Type, error) {
	n := r.count()
	if r.err != nil {
		return nil, r.err
	}
	type pending struct {
		kind     ir.Kind
		bits     int
		n        int
		elem     int
		name     string
		fields   []int
		ret      int
		variadic bool
	}
	pend := make([]pending, n)
	for i := 0; i < n; i++ {
		k := ir.Kind(r.u64())
		p := pending{kind: k}
		switch k {
		case ir.IntKind:
			p.bits = int(r.u64())
		case ir.PointerKind:
			p.elem = int(r.u64())
		case ir.ArrayKind:
			p.n = int(r.u64())
			p.elem = int(r.u64())
		case ir.StructKind:
			p.name = r.str()
			fn := r.count()
			for j := 0; j < fn; j++ {
				p.fields = append(p.fields, int(r.u64()))
			}
		case ir.FuncKind:
			p.ret = int(r.u64())
			pn := r.count()
			for j := 0; j < pn; j++ {
				p.fields = append(p.fields, int(r.u64()))
			}
			p.variadic = r.bool()
		}
		pend[i] = p
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	types := make([]*ir.Type, n)
	// Named structs first (so recursion can resolve), then fixpoint over
	// the rest.
	for i, p := range pend {
		if p.kind == ir.StructKind && p.name != "" {
			types[i] = ir.NamedStruct(p.name)
		}
	}
	// visiting guards against corrupted type graphs whose cycles do not
	// pass through a named struct (the only legal recursion point): an
	// anonymous cycle would otherwise recurse without bound.
	visiting := make([]bool, n)
	var resolve func(i int) (*ir.Type, error)
	resolve = func(i int) (*ir.Type, error) {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("bytecode: type index %d out of range", i)
		}
		if types[i] != nil {
			return types[i], nil
		}
		if visiting[i] {
			return nil, fmt.Errorf("bytecode: anonymous type cycle at index %d", i)
		}
		visiting[i] = true
		defer func() { visiting[i] = false }()
		p := pend[i]
		var t *ir.Type
		var err error
		switch p.kind {
		case ir.VoidKind:
			t = ir.Void
		case ir.IntKind:
			// Validate before calling the constructor: ir.IntType panics on
			// unsupported widths, and decode input is untrusted.
			switch p.bits {
			case 1, 8, 16, 32, 64:
				t = ir.IntType(p.bits)
			default:
				err = fmt.Errorf("bytecode: unsupported integer width %d", p.bits)
			}
		case ir.FloatKind:
			t = ir.F64
		case ir.LabelKind:
			t = ir.Label
		case ir.PointerKind:
			var e *ir.Type
			if e, err = resolve(p.elem); err == nil {
				t = ir.PointerTo(e)
			}
		case ir.ArrayKind:
			if p.n < 0 || p.n > 1<<31 {
				err = fmt.Errorf("bytecode: array length %d out of range", p.n)
				break
			}
			var e *ir.Type
			if e, err = resolve(p.elem); err == nil {
				t = ir.ArrayOf(p.n, e)
			}
		case ir.StructKind:
			fields := make([]*ir.Type, len(p.fields))
			for j, fi := range p.fields {
				if fields[j], err = resolve(fi); err != nil {
					return nil, err
				}
			}
			t = ir.StructOf(fields...)
		case ir.FuncKind:
			var ret *ir.Type
			if ret, err = resolve(p.ret); err != nil {
				return nil, err
			}
			params := make([]*ir.Type, len(p.fields))
			for j, fi := range p.fields {
				if params[j], err = resolve(fi); err != nil {
					return nil, err
				}
			}
			t = ir.FuncOf(ret, params, p.variadic)
		default:
			err = fmt.Errorf("bytecode: unknown type kind %d", p.kind)
		}
		if err != nil {
			return nil, err
		}
		types[i] = t
		return t, nil
	}
	for i := range pend {
		if _, err := resolve(i); err != nil {
			return nil, err
		}
	}
	// Set named struct bodies after all types exist.
	for i, p := range pend {
		if p.kind == ir.StructKind && p.name != "" {
			fields := make([]*ir.Type, len(p.fields))
			for j, fi := range p.fields {
				if fi < 0 || fi >= n {
					return nil, fmt.Errorf("bytecode: type index %d out of range", fi)
				}
				fields[j] = types[fi]
			}
			types[i].SetBody(fields...)
		}
	}
	return types, nil
}

// --- operand encoding -------------------------------------------------------

// Operand tags.
const (
	opdConstInt = iota
	opdConstFloat
	opdConstNull
	opdConstUndef
	opdGlobal
	opdFunc
	opdParam
	opdInstr
	opdGlobalAddrG // address-of-global constant
	opdGlobalAddrF // address-of-function constant
	opdConstString
)

type encoder struct {
	w       *writer
	tt      *typeTable
	globals map[*ir.Global]int
	funcs   map[*ir.Function]int
}

func (e *encoder) operand(f *ir.Function, v ir.Value) error {
	switch v := v.(type) {
	case *ir.ConstInt:
		e.w.u64(opdConstInt)
		e.w.u64(uint64(e.tt.index[v.Typ]))
		e.w.u64(v.V)
	case *ir.ConstFloat:
		e.w.u64(opdConstFloat)
		e.w.u64(math.Float64bits(v.F))
	case *ir.ConstNull:
		e.w.u64(opdConstNull)
		e.w.u64(uint64(e.tt.index[v.Typ]))
	case *ir.ConstUndef:
		e.w.u64(opdConstUndef)
		e.w.u64(uint64(e.tt.index[v.Typ]))
	case *ir.Global:
		e.w.u64(opdGlobal)
		e.w.u64(uint64(e.globals[v]))
	case *ir.Function:
		e.w.u64(opdFunc)
		e.w.u64(uint64(e.funcs[v]))
	case *ir.Param:
		e.w.u64(opdParam)
		e.w.u64(uint64(v.Idx))
	case *ir.Instr:
		e.w.u64(opdInstr)
		e.w.u64(uint64(v.Num()))
	case *ir.GlobalAddr:
		switch g := v.G.(type) {
		case *ir.Global:
			e.w.u64(opdGlobalAddrG)
			e.w.u64(uint64(e.globals[g]))
		case *ir.Function:
			e.w.u64(opdGlobalAddrF)
			e.w.u64(uint64(e.funcs[g]))
		default:
			return fmt.Errorf("bytecode: unsupported global address %T", v.G)
		}
	default:
		return fmt.Errorf("bytecode: unsupported operand %T", v)
	}
	return nil
}
