package bytecode

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
)

// Hash returns the SHA-256 content hash of a bytecode image.
func Hash(data []byte) [32]byte { return sha256.Sum256(data) }

// CacheEntry pairs a bytecode image hash with its cached native
// translation, signed together (paper §3.4: "the translated native code is
// cached on disk together with the bytecode, and the pair is digitally
// signed together to ensure integrity and safety of the native code").
//
// In this reproduction the "native code" blob is the serialized summary of
// the translator's pre-lowered form; its exact contents matter less than
// the integrity protocol around it.
type CacheEntry struct {
	ModuleHash  [32]byte
	Config      string // which VM configuration produced the translation
	Translation []byte
	Sig         []byte
}

// Signer signs and verifies translation cache entries with an Ed25519 key
// held by the SVM installation.
type Signer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewSigner creates a signer with a freshly generated key pair (seeded
// deterministically for reproducible tests when seed is non-nil).
func NewSigner(seed []byte) (*Signer, error) {
	if seed != nil {
		if len(seed) != ed25519.SeedSize {
			return nil, fmt.Errorf("bytecode: seed must be %d bytes", ed25519.SeedSize)
		}
		priv := ed25519.NewKeyFromSeed(seed)
		return &Signer{pub: priv.Public().(ed25519.PublicKey), priv: priv}, nil
	}
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	return &Signer{pub: pub, priv: priv}, nil
}

func (s *Signer) message(e *CacheEntry) []byte {
	msg := make([]byte, 0, 32+len(e.Config)+len(e.Translation))
	msg = append(msg, e.ModuleHash[:]...)
	msg = append(msg, e.Config...)
	msg = append(msg, e.Translation...)
	return msg
}

// Sign signs a cache entry in place.
func (s *Signer) Sign(e *CacheEntry) {
	e.Sig = ed25519.Sign(s.priv, s.message(e))
}

// Verify checks an entry's signature and that it matches the presented
// bytecode image.
func (s *Signer) Verify(e *CacheEntry, bytecodeImage []byte) error {
	if Hash(bytecodeImage) != e.ModuleHash {
		return fmt.Errorf("bytecode: cached translation is for different bytecode")
	}
	if !ed25519.Verify(s.pub, s.message(e), e.Sig) {
		return fmt.Errorf("bytecode: translation cache signature invalid")
	}
	return nil
}

// SignFile produces a detached signature blob for a bytecode image:
// the signer's public key followed by the Ed25519 signature (the on-disk
// form of the §3.4 "digitally signed together" pairing).
func (s *Signer) SignFile(image []byte) []byte {
	sig := ed25519.Sign(s.priv, image)
	out := make([]byte, 0, len(s.pub)+len(sig))
	out = append(out, s.pub...)
	out = append(out, sig...)
	return out
}

// VerifyFile checks a detached signature blob against a bytecode image.
func VerifyFile(image, blob []byte) error {
	if len(blob) != ed25519.PublicKeySize+ed25519.SignatureSize {
		return fmt.Errorf("bytecode: malformed signature blob (%d bytes)", len(blob))
	}
	pub := ed25519.PublicKey(blob[:ed25519.PublicKeySize])
	if !ed25519.Verify(pub, image, blob[ed25519.PublicKeySize:]) {
		return fmt.Errorf("bytecode: signature verification failed")
	}
	return nil
}

// cacheKey identifies one translation: the bytecode image hash plus the
// VM configuration that produced it.  Keying by hash alone let a safe and
// an sva-llvm translation of the same module overwrite each other, and
// Get could hand back a translation built for the wrong config.
type cacheKey struct {
	hash   [32]byte
	config string
}

// Cache is an in-memory signed translation cache (the on-disk cache of a
// real deployment; the examples persist it through these APIs).
type Cache struct {
	signer  *Signer
	entries map[cacheKey]*CacheEntry
	Hits    int
	Misses  int
}

// NewCache creates a cache bound to a signer.
func NewCache(s *Signer) *Cache {
	return &Cache{signer: s, entries: map[cacheKey]*CacheEntry{}}
}

// Put stores and signs a translation for the given bytecode image and
// configuration.  Entries for distinct configurations coexist.
func (c *Cache) Put(bytecodeImage, translation []byte, config string) *CacheEntry {
	e := &CacheEntry{ModuleHash: Hash(bytecodeImage), Config: config, Translation: translation}
	c.signer.Sign(e)
	c.entries[cacheKey{hash: e.ModuleHash, config: config}] = e
	return e
}

// Get fetches and verifies the cached translation for a bytecode image in
// the given configuration; a verification failure removes the corrupt
// entry.  The returned entry's Config always equals the requested config —
// a translation built for another configuration is never handed out.
func (c *Cache) Get(bytecodeImage []byte, config string) (*CacheEntry, error) {
	k := cacheKey{hash: Hash(bytecodeImage), config: config}
	e, ok := c.entries[k]
	if !ok {
		c.Misses++
		return nil, nil
	}
	if e.Config != config {
		// Unreachable through Put, but the cache may be rehydrated from
		// disk: a mislabeled entry is corrupt, same as a bad signature.
		delete(c.entries, k)
		c.Misses++
		return nil, fmt.Errorf("bytecode: cached translation is for config %q, not %q", e.Config, config)
	}
	if err := c.signer.Verify(e, bytecodeImage); err != nil {
		delete(c.entries, k)
		c.Misses++
		return nil, err
	}
	c.Hits++
	return e, nil
}
