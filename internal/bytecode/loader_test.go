package bytecode

import (
	"strings"
	"testing"

	"sva/internal/hw"
	"sva/internal/vm"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = byte(i)
	}
	signer, err := NewSigner(seed)
	if err != nil {
		t.Fatal(err)
	}
	return NewCache(signer)
}

// TestCacheConfigKeying is the regression test for the hash-only cache
// key: translations for different configurations of the same bytecode
// image must coexist, and Get must never hand a VM a translation built
// for another configuration.  On the old cache the second Put overwrote
// the first (same ModuleHash), so the sva-safe lookup came back with the
// sva-llvm blob.
func TestCacheConfigKeying(t *testing.T) {
	cache := testCache(t)
	image, err := Encode(sampleModule())
	if err != nil {
		t.Fatal(err)
	}

	cache.Put(image, []byte("safe-translation"), "sva-safe")
	cache.Put(image, []byte("llvm-translation"), "sva-llvm")

	for _, tc := range []struct{ config, want string }{
		{"sva-safe", "safe-translation"},
		{"sva-llvm", "llvm-translation"},
	} {
		e, err := cache.Get(image, tc.config)
		if err != nil || e == nil {
			t.Fatalf("Get(%s) = %v, %v", tc.config, e, err)
		}
		if string(e.Translation) != tc.want {
			t.Errorf("Get(%s) returned %q, want %q — configs overwrote each other",
				tc.config, e.Translation, tc.want)
		}
		if e.Config != tc.config {
			t.Errorf("Get(%s) returned an entry labeled %q", tc.config, e.Config)
		}
	}

	// A configuration that never stored a translation must miss, not
	// receive another configuration's entry.
	if e, err := cache.Get(image, "sva-gcc"); e != nil || err != nil {
		t.Errorf("Get for unstored config = %v, %v; want miss", e, err)
	}
}

// TestLoadTranslated wires the cache through the VM's load-time
// translation: first load translates and populates the cache, a second VM
// of the same configuration reuses the signed entry, and a VM of a
// different configuration gets its own translation rather than the
// other's.
func TestLoadTranslated(t *testing.T) {
	cache := testCache(t)
	image, err := Encode(sampleModule())
	if err != nil {
		t.Fatal(err)
	}

	boot := func(cfg vm.Config) *vm.VM {
		return vm.New(hw.NewMachine(0, 16), cfg)
	}

	if _, hit, err := LoadTranslated(boot(vm.ConfigSafe), cache, image, false); err != nil || hit {
		t.Fatalf("first safe load: hit=%v err=%v; want cold translation", hit, err)
	}
	if _, hit, err := LoadTranslated(boot(vm.ConfigSafe), cache, image, false); err != nil || !hit {
		t.Fatalf("second safe load: hit=%v err=%v; want cache hit", hit, err)
	}
	// Different config: its own translation, not the cached sva-safe one.
	if _, hit, err := LoadTranslated(boot(vm.ConfigSVALLVM), cache, image, false); err != nil || hit {
		t.Fatalf("llvm load: hit=%v err=%v; want cold translation", hit, err)
	}
	if _, hit, err := LoadTranslated(boot(vm.ConfigSVALLVM), cache, image, false); err != nil || !hit {
		t.Fatalf("second llvm load: hit=%v err=%v; want cache hit", hit, err)
	}
	// Untranslated configs never touch the cache.
	misses := cache.Misses
	if _, hit, err := LoadTranslated(boot(vm.ConfigNative), cache, image, false); err != nil || hit {
		t.Fatalf("native load: hit=%v err=%v", hit, err)
	}
	if cache.Misses != misses {
		t.Error("native config consulted the translation cache")
	}

	// The cached blobs are per-config summaries of the compiled form.
	e, err := cache.Get(image, "sva-safe")
	if err != nil || e == nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(e.Translation), "sva-translation config=sva-safe\n") {
		t.Errorf("cached blob header: %q", e.Translation[:40])
	}
}
