package bytecode

import (
	"fmt"

	"sva/internal/ir"
	"sva/internal/vm"
)

// LoadTranslated is the load-time translation path the signing layer was
// built for (paper §3.4): decode and verify-load a bytecode image into a
// VM, then ensure the signed cache holds a translation for the VM's exact
// configuration — reusing a verified cached entry when one exists, or
// translating now and caching the result.  It reports whether the
// translation came from the cache.
//
// The cache is consulted per (image hash, config): a translation built
// for sva-safe is never handed to an sva-llvm VM or vice versa, and both
// may coexist for the same image.
func LoadTranslated(v *vm.VM, c *Cache, image []byte, user bool) (*ir.Module, bool, error) {
	m, err := Decode(image)
	if err != nil {
		return nil, false, fmt.Errorf("bytecode: decoding image: %w", err)
	}
	if errs := ir.VerifyModule(m); len(errs) != 0 {
		return nil, false, fmt.Errorf("bytecode: image fails verification: %v", errs[0])
	}
	if err := v.LoadModule(m, user); err != nil {
		return nil, false, err
	}
	if !v.Cfg.Translated() {
		return m, false, nil // direct configs execute without a translation
	}
	cfg := v.Cfg.String()
	if c != nil {
		e, err := c.Get(image, cfg)
		if err == nil && e != nil {
			// Signed translation for this exact (image, config): the VM
			// still translates lazily on first call, but the load-time
			// contract — verified bytecode paired with a verified
			// translation — is satisfied without re-deriving the blob.
			return m, true, nil
		}
		// Miss or evicted-corrupt entry: fall through and (re)translate.
	}
	blob, err := v.TranslateModule(m)
	if err != nil {
		return nil, false, err
	}
	if c != nil {
		c.Put(image, blob, cfg)
	}
	return m, false, nil
}
