// Quickstart: build a small program in the SVA virtual instruction set,
// run it through the full pipeline — safety-checking compiler, bytecode
// round trip, verifier, secure virtual machine — and watch a buffer
// overrun get caught at run time.
package main

import (
	"fmt"
	"log"

	"sva/internal/bytecode"
	"sva/internal/hw"
	"sva/internal/ir"
	"sva/internal/pointer"
	"sva/internal/safety"
	"sva/internal/svaos"
	"sva/internal/typecheck"
	"sva/internal/vm"
)

func main() {
	// 1. Write a program against the virtual ISA.  sum_first(n) allocates
	//    a 10-element table on the heap, fills it, and sums table[0..n) —
	//    with no bounds discipline of its own, like C.
	m := ir.NewModule("quickstart")
	bp := ir.PointerTo(ir.I8)
	malloc := m.NewFunc("malloc", ir.FuncOf(bp, []*ir.Type{ir.I64}, false))
	malloc.External = true // provided by the runtime below
	free := m.NewFunc("free", ir.FuncOf(ir.Void, []*ir.Type{bp}, false))
	free.External = true

	b := ir.NewBuilder(m)
	b.NewFunc("sum_first", ir.FuncOf(ir.I64, []*ir.Type{ir.I64}, false), "n")
	raw := b.Call(malloc, ir.I64c(80))
	tbl := b.Bitcast(raw, ir.PointerTo(ir.I64))
	b.For("i", ir.I64c(0), ir.I64c(10), ir.I64c(1), func(i ir.Value) {
		b.Store(b.Mul(i, i), b.GEP(tbl, i))
	})
	acc := b.Alloca(ir.I64, "acc")
	b.Store(ir.I64c(0), acc)
	b.For("i", ir.I64c(0), b.Param(0), ir.I64c(1), func(i ir.Value) {
		b.Store(b.Add(b.Load(acc), b.Load(b.GEP(tbl, i))), acc)
	})
	b.Call(free, raw)
	b.Ret(b.Load(acc))
	b.Seal()

	// 2. Run the safety-checking compiler: pointer analysis, metapool
	//    inference, check insertion, metapool type annotations.
	cfg := safety.Config{
		Pointer: pointer.Config{
			TrackIntToPtrNull: true,
			Allocators: []pointer.AllocatorInfo{{
				Name: "malloc", Kind: pointer.OrdinaryAllocator, SizeArg: 0,
				FreeName: "free", FreePtrArg: 0,
			}},
		},
	}
	prog, err := safety.Compile(cfg, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safety compiler: %d metapools, %d bounds checks inserted\n",
		len(prog.Descs), prog.Metrics.BoundsChecksInserted)

	// 3. Ship it as bytecode and verify it on the "end-user system": the
	//    structural verifier plus the §5 metapool type checker — the only
	//    trusted pieces.
	image, err := bytecode.Encode(m)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := bytecode.Decode(image)
	if err != nil {
		log.Fatal(err)
	}
	if errs := ir.VerifyModule(loaded); len(errs) != 0 {
		log.Fatal(errs[0])
	}
	if errs := typecheck.New(loaded.Metapools).Check(loaded); len(errs) != 0 {
		log.Fatal(errs[0])
	}
	h := bytecode.Hash(image)
	fmt.Printf("bytecode verified: %d bytes, sha256 %x...\n", len(image), h[:8])

	// 4. Execute on the SVM.  malloc/free come from a 3-line host runtime
	//    (a real kernel brings its own allocators).
	v := vm.New(hw.NewMachine(0, 16), vm.ConfigSafe)
	svaos.Install(v)
	heap := uint64(0x9000_0000)
	v.RegisterIntrinsic("malloc", func(v *vm.VM, a []uint64) (vm.IntrinsicResult, error) {
		p := heap
		heap += (a[0] + 15) &^ 15
		return vm.IntrinsicResult{Value: p}, nil
	})
	v.RegisterIntrinsic("free", func(v *vm.VM, a []uint64) (vm.IntrinsicResult, error) {
		return vm.IntrinsicResult{}, nil
	})
	for _, f := range loaded.Funcs {
		if f.External {
			f.External, f.Intrinsic = false, true // route to the handlers above
		}
	}
	if err := v.LoadModule(loaded, false); err != nil {
		log.Fatal(err)
	}

	run := func(n uint64) {
		f := v.FuncByName("sum_first")
		top, _ := v.AllocKernelStack(64 * 1024)
		ex, err := v.NewExec(f, []uint64{n}, top, hw.PrivKernel)
		if err != nil {
			log.Fatal(err)
		}
		v.SetExec(ex)
		got, err := v.Run()
		if err != nil {
			fmt.Printf("sum_first(%d) -> SAFETY TRAP: %v\n", n, err)
			return
		}
		fmt.Printf("sum_first(%d) = %d\n", n, got)
	}
	run(10) // in bounds: sum of squares 0..9 = 285
	run(50) // overrun: the inserted boundscheck fires
}
