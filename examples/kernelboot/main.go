// Kernelboot: boot the guest kernel under all four configurations of §7.1,
// run the syscall battery on each, and print what the SVM observed —
// traps, context switches, run-time checks, translations.
package main

import (
	"fmt"
	"log"

	"sva/internal/kernel"
	"sva/internal/userland"
	"sva/internal/vm"
)

func main() {
	configs := []vm.Config{vm.ConfigNative, vm.ConfigSVAGCC, vm.ConfigSVALLVM, vm.ConfigSafe}
	for _, cfg := range configs {
		u := userland.BuildTestPrograms()
		sys, err := kernel.NewSystem(cfg, true, u.M)
		if err != nil {
			log.Fatalf("%v: %v", cfg, err)
		}
		if err := sys.RegisterProgram("execchild", u.M.Func("execchild.start")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %-8s  %s", cfg, sys.ConsoleOutput())

		progs := []struct {
			name string
			arg  uint64
		}{
			{"hello", 0},
			{"fileio", 8192},
			{"forkwait", 7},
			{"pipeecho", 65536},
			{"sigping", 10},
			{"execer", 5},
		}
		for _, p := range progs {
			got, err := sys.RunUser(u.M.Func(p.name), p.arg, 0)
			if err != nil {
				log.Fatalf("%v: %s: %v", cfg, p.name, err)
			}
			fmt.Printf("  %-10s(%6d) = %d\n", p.name, p.arg, int64(got))
		}
		c := sys.VM.Counters
		fmt.Printf("  counters: steps=%d kernel=%d traps=%d switches=%d\n",
			c.Steps, c.KSteps, c.Traps, c.Switches)
		fmt.Printf("  checks:   bounds=%d load-store=%d indirect-call=%d translations=%d violations=%d\n\n",
			c.ChecksBounds, c.ChecksLS, c.ChecksIC, c.Translations, len(sys.VM.Violations))
	}
}
