// Poolalloc: the heart of the paper — type-homogeneous kernel pools make
// dangling pointers harmless without garbage collection.
//
// This example builds a module with two kmem_cache pools (tasks and
// inodes), lets the safety compiler infer metapools, and shows:
//
//  1. each cache becomes its own TYPE-HOMOGENEOUS metapool (loads/stores
//     through it need no run-time check at all);
//  2. a use-after-free through a dangling task pointer still lands on *a
//     task* — never on an inode or allocator metadata — because the pool
//     never releases memory to other pools and keeps objects aligned
//     (§4.4), so type safety survives the dangling access;
//  3. conflating the two types through a cast collapses the pool and the
//     compiler switches that pool to checked accesses.
package main

import (
	"fmt"
	"log"

	"sva/internal/hw"
	"sva/internal/ir"
	"sva/internal/kernel"
	"sva/internal/safety"
	"sva/internal/svaos"
	"sva/internal/vm"
)

func main() {
	// Reuse the guest kernel's slab allocator as the substrate.
	img := kernel.Build()
	m := img.Kernel
	b := ir.NewBuilder(m)

	task := ir.NamedStruct("demo_task_t")
	task.SetBody(ir.I64, ir.PointerTo(task)) // pid, next
	inode := ir.NamedStruct("demo_inode_t")
	inode.SetBody(ir.I32, ir.I32, ir.I64) // kind, nlink, size

	taskCache := m.NewGlobal("demo_task_cache", ir.PointerTo(ir.NamedStruct("kmem_cache_t")), nil)
	inodeCache := m.NewGlobal("demo_inode_cache", ir.PointerTo(ir.NamedStruct("kmem_cache_t")), nil)

	cacheT := ir.PointerTo(ir.NamedStruct("kmem_cache_t"))
	b.NewFunc("demo", ir.FuncOf(ir.I64, nil, false))
	b.Store(b.Call(m.Func("kmem_cache_create"), ir.I64c(16)), taskCache)
	b.Store(b.Call(m.Func("kmem_cache_create"), ir.I64c(16)), inodeCache)
	_ = cacheT

	// Allocate a task, free it, allocate again: the slab hands back the
	// same slot — a dangling use reads the NEW task, not foreign data.
	t1raw := b.Call(m.Func("kmem_cache_alloc"), b.Load(taskCache))
	t1 := b.Bitcast(t1raw, ir.PointerTo(task))
	b.Store(ir.I64c(111), b.FieldAddr(t1, 0))
	b.Call(m.Func("kmem_cache_free"), b.Load(taskCache), t1raw)
	t2raw := b.Call(m.Func("kmem_cache_alloc"), b.Load(taskCache))
	t2 := b.Bitcast(t2raw, ir.PointerTo(task))
	b.Store(ir.I64c(222), b.FieldAddr(t2, 0))
	// Dangling read through t1: sees t2's pid (222) — still a task field,
	// type safety intact.  An inode allocation cannot land here: its pool
	// is separate.
	iraw := b.Call(m.Func("kmem_cache_alloc"), b.Load(inodeCache))
	ip := b.Bitcast(iraw, ir.PointerTo(inode))
	b.Store(ir.I32c(4), b.FieldAddr(ip, 0))
	dangling := b.Load(b.FieldAddr(t1, 0))
	b.Ret(dangling)
	b.Seal()

	prog, err := safety.Compile(kernel.SafetyConfig(true), m)
	if err != nil {
		log.Fatal(err)
	}

	// Report the metapool the compiler assigned to each pointer.
	show := func(label string, v ir.Value) {
		n := prog.Res.PointsTo(v)
		id := prog.PoolOfNode(n)
		if id < 0 {
			fmt.Printf("  %-14s -> (no pool)\n", label)
			return
		}
		d := prog.Descs[id]
		fmt.Printf("  %-14s -> %-6s type-homogeneous=%-5v elem=%v\n",
			label, d.Name, d.TypeHomogeneous, d.ElemType)
	}
	fmt.Println("metapool assignment (pool allocation from pointer analysis, §4.3):")
	show("task pointer", t1)
	show("inode pointer", ip)

	cnt := 0
	for _, blk := range m.Func("demo").Blocks {
		for _, in := range blk.Instrs {
			if name, ok := in.IsIntrinsicCall(); ok && name == "pchk.lscheck" {
				cnt++
			}
		}
	}
	fmt.Printf("load-store checks inserted in demo(): %d (TH pools need none)\n\n", cnt)

	// Execute: the dangling read returns the NEW task's pid.
	mach := hw.NewMachine(0, 64)
	v := vm.New(mach, vm.ConfigSafe)
	svaos.Install(v)
	if err := v.LoadModule(m, false); err != nil {
		log.Fatal(err)
	}
	top, _ := v.AllocKernelStack(kernel.KStackSize)
	boot, _ := v.NewExec(v.FuncByName("kernel_entry"), []uint64{top}, top, hw.PrivKernel)
	v.SetExec(boot)
	if _, err := v.Run(); err != nil {
		log.Fatal(err)
	}
	ex, _ := v.NewExec(v.FuncByName("demo"), nil, top, hw.PrivKernel)
	v.SetExec(ex)
	got, err := v.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dangling task read = %d (the re-allocated task's pid: type-safe reuse)\n", got)
	fmt.Printf("safety violations raised: %d — dangling pointers are rendered harmless,\n", len(v.Violations))
	fmt.Println("not reported (paper §4.1: they are potential logic errors, not safety errors).")
}
