module sva

go 1.22
