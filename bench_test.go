package sva

// One benchmark family per table/figure of the paper's evaluation (§7).
// Each benchmark executes the actual workload on the secure virtual
// machine and reports the paper's headline quantity as custom metrics:
// virtual-cycle costs per configuration and the percentage overhead of the
// safety-checked kernel over the native one.  Absolute numbers are not
// comparable to the paper's Pentium III; the shapes are (EXPERIMENTS.md
// records both).
//
// Run everything:  go test -bench=. -benchmem
// One table:       go test -bench=BenchmarkTable7

import (
	"sync"
	"testing"

	"sva/internal/exploits"
	"sva/internal/hbench"
	"sva/internal/kernel"
	"sva/internal/metapool"
	"sva/internal/report"
	"sva/internal/safety"
	"sva/internal/typecheck"
	"sva/internal/vm"
)

var (
	hbOnce   sync.Once
	hbRunner *hbench.Runner
	hbErr    error
)

func benchRunner(b *testing.B) *hbench.Runner {
	b.Helper()
	hbOnce.Do(func() { hbRunner, hbErr = hbench.NewRunner() })
	if hbErr != nil {
		b.Fatal(hbErr)
	}
	return hbRunner
}

// BenchmarkTable4_PortingEffort regenerates the porting-effort ledger.
func BenchmarkTable4_PortingEffort(b *testing.B) {
	var img *kernel.Image
	for i := 0; i < b.N; i++ {
		img = kernel.Build()
		img.CountLOC()
	}
	l := img.Ledger
	var os, al, an int
	for _, v := range l.SVAOS {
		os += v
	}
	for _, v := range l.Alloc {
		al += v
	}
	for _, v := range l.Analysis {
		an += v
	}
	b.ReportMetric(float64(os), "svaos-lines")
	b.ReportMetric(float64(al), "allocator-lines")
	b.ReportMetric(float64(an), "analysis-lines")
}

// benchLatency measures one Table 7 row across native and safe kernels.
func benchLatency(b *testing.B, prog string, iters uint64) {
	r := benchRunner(b)
	var native, safe float64
	for i := 0; i < b.N; i++ {
		dn, err := r.Measure(vm.ConfigNative, prog, iters)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := r.Measure(vm.ConfigSafe, prog, iters)
		if err != nil {
			b.Fatal(err)
		}
		native, safe = float64(dn), float64(ds)
	}
	b.ReportMetric(native, "native-cyc/op")
	b.ReportMetric(safe, "safe-cyc/op")
	if native > 0 {
		b.ReportMetric(100*(safe-native)/native, "overhead-%")
	}
}

func BenchmarkTable7_Getpid(b *testing.B)       { benchLatency(b, "lat_getpid", 500) }
func BenchmarkTable7_Getrusage(b *testing.B)    { benchLatency(b, "lat_getrusage", 300) }
func BenchmarkTable7_Gettimeofday(b *testing.B) { benchLatency(b, "lat_gettimeofday", 300) }
func BenchmarkTable7_OpenClose(b *testing.B)    { benchLatency(b, "lat_openclose", 150) }
func BenchmarkTable7_Sbrk(b *testing.B)         { benchLatency(b, "lat_sbrk", 500) }
func BenchmarkTable7_Sigaction(b *testing.B)    { benchLatency(b, "lat_sigaction", 300) }
func BenchmarkTable7_Write(b *testing.B)        { benchLatency(b, "lat_write", 200) }
func BenchmarkTable7_Pipe(b *testing.B)         { benchLatency(b, "lat_pipe", 60) }
func BenchmarkTable7_Fork(b *testing.B)         { benchLatency(b, "lat_fork", 20) }
func BenchmarkTable7_ForkExec(b *testing.B)     { benchLatency(b, "lat_forkexec", 20) }

// benchBandwidth measures one Table 8 row.
func benchBandwidth(b *testing.B, prog string, size uint64, iters uint64) {
	r := benchRunner(b)
	var native, safe float64
	for i := 0; i < b.N; i++ {
		for _, cfg := range []vm.Config{vm.ConfigNative, vm.ConfigSafe} {
			if err := r.PrepareBandwidth(cfg, size); err != nil {
				b.Fatal(err)
			}
			d, err := r.Measure(cfg, prog, iters)
			if err != nil {
				b.Fatal(err)
			}
			if cfg == vm.ConfigNative {
				native = float64(d)
			} else {
				safe = float64(d)
			}
		}
	}
	b.SetBytes(int64(size))
	b.ReportMetric(native, "native-cyc/xfer")
	if safe > 0 {
		b.ReportMetric(100*(safe-native)/safe, "bw-reduction-%")
	}
}

func BenchmarkTable8_FileRead32k(b *testing.B)  { benchBandwidth(b, "bw_file_rd", 32*1024, 3) }
func BenchmarkTable8_FileRead64k(b *testing.B)  { benchBandwidth(b, "bw_file_rd", 64*1024, 2) }
func BenchmarkTable8_FileRead128k(b *testing.B) { benchBandwidth(b, "bw_file_rd", 128*1024, 2) }
func BenchmarkTable8_Pipe32k(b *testing.B)      { benchBandwidth(b, "bw_pipe", 32*1024, 2) }
func BenchmarkTable8_Pipe64k(b *testing.B)      { benchBandwidth(b, "bw_pipe", 64*1024, 2) }
func BenchmarkTable8_Pipe128k(b *testing.B)     { benchBandwidth(b, "bw_pipe", 128*1024, 1) }

// BenchmarkTable5And6_Applications runs all application workloads (Tables
// 5 and 6) at reduced scale and reports the safe-kernel overhead for the
// kernel-heavy and compute-heavy extremes.
func BenchmarkTable5And6_Applications(b *testing.B) {
	var rows []report.AppRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.RunApps(report.Scale(6))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "ldd":
			b.ReportMetric(r.OverSafe, "ldd-safe-overhead-%")
		case "lame":
			b.ReportMetric(r.OverSafe, "lame-safe-overhead-%")
		case "thttpd (311B)":
			b.ReportMetric(r.OverSafe, "thttpd311-safe-overhead-%")
		}
	}
}

// BenchmarkTable9_StaticMetrics times the safety-checking compiler over
// the whole kernel and reports the Table 9 headline fractions.
func BenchmarkTable9_StaticMetrics(b *testing.B) {
	var prog *safety.Program
	for i := 0; i < b.N; i++ {
		img := kernel.Build()
		var err error
		prog, err = safety.Compile(kernel.SafetyConfig(true), img.Kernel)
		if err != nil {
			b.Fatal(err)
		}
	}
	m := prog.Metrics
	b.ReportMetric(m.PctAllocSitesSeen(), "alloc-sites-seen-%")
	b.ReportMetric(m.ArrayIdx.PctIncomplete(), "arrayidx-incomplete-%")
	b.ReportMetric(m.ArrayIdx.PctTypeSafe(), "arrayidx-typesafe-%")
}

// BenchmarkExploits_SafeKernel runs the §7.2 exploit suite against the
// as-tested safe kernel and reports the detection count.
func BenchmarkExploits_SafeKernel(b *testing.B) {
	caught := 0
	for i := 0; i < b.N; i++ {
		caught = 0
		for _, e := range exploits.All() {
			r, err := exploits.Run(e, vm.ConfigSafe, true)
			if err != nil {
				b.Fatal(err)
			}
			if r.Detected {
				caught++
			}
		}
	}
	b.ReportMetric(float64(caught), "exploits-caught-of-5")
}

// BenchmarkVerifier_BugInjection times the §5 verifier experiment.
func BenchmarkVerifier_BugInjection(b *testing.B) {
	detected := 0
	for i := 0; i < b.N; i++ {
		detected = 0
		for _, kind := range []typecheck.BugKind{typecheck.BugAliasing, typecheck.BugEdge, typecheck.BugTHClaim, typecheck.BugSplit} {
			img := kernel.Build()
			prog, err := safety.Compile(kernel.SafetyConfig(true), img.Kernel)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := typecheck.InjectBug(kind, i%5, prog.Descs, img.Kernel); !ok {
				continue
			}
			if errs := typecheck.New(img.Kernel.Metapools).Check(img.Kernel); len(errs) > 0 {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "bugs-detected-of-4")
}

// --- check cache and parallel harness (this PR's optimizations) -------------

// benchPoolCheck drives LoadStoreCheck over a 2-address hot set (the
// common shape: one buffer plus one metadata object) with the last-hit
// cache on or off.
func benchPoolCheck(b *testing.B, noCache bool) {
	p := metapool.NewPool("bench", false, true, 0)
	p.NoCache = noCache
	for i := uint64(0); i < 64; i++ {
		if err := p.Register(0x1000+i*64, 64, metapool.TagHeap); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.LoadStoreCheck(0x1000 + uint64(i%2)*64 + 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.SplayLookups())/float64(b.N), "splay/op")
}

func BenchmarkCheck_Cached(b *testing.B)   { benchPoolCheck(b, false) }
func BenchmarkCheck_Uncached(b *testing.B) { benchPoolCheck(b, true) }

// BenchmarkChecksCache_Table7Safe runs the Table 7 latency battery on the
// safe kernel twice — cache on and cache off — and reports how many splay
// lookups the last-hit cache eliminates (the §7.1.3 optimization).
func BenchmarkChecksCache_Table7Safe(b *testing.B) {
	battery := func(noCache bool) (splay, hits, misses uint64) {
		r, err := hbench.NewRunner()
		if err != nil {
			b.Fatal(err)
		}
		// Boot the safe system first so the toggle covers exactly the
		// measured battery, not kernel initialization.
		if _, err := r.Measure(vm.ConfigSafe, "lat_getpid", 1); err != nil {
			b.Fatal(err)
		}
		sys := r.Systems[vm.ConfigSafe]
		sys.VM.Pools.SetCacheDisabled(noCache)
		lk := func() uint64 {
			var n uint64
			for _, p := range sys.VM.Pools.Snapshot().Pools {
				n += p.SplayLookups
			}
			return n
		}
		base, baseStats := lk(), sys.VM.Pools.TotalStats()
		for _, op := range hbench.LatencyOps {
			if _, err := r.Measure(vm.ConfigSafe, op.Prog, op.Iters/8); err != nil {
				b.Fatal(err)
			}
		}
		st := sys.VM.Pools.TotalStats()
		return lk() - base, st.CacheHits - baseStats.CacheHits, st.CacheMisses - baseStats.CacheMisses
	}
	var ratio, hitPct float64
	for i := 0; i < b.N; i++ {
		cachedSplay, hits, misses := battery(false)
		uncachedSplay, _, _ := battery(true)
		ratio = float64(uncachedSplay) / float64(cachedSplay)
		hitPct = 100 * float64(hits) / float64(hits+misses)
	}
	b.ReportMetric(ratio, "splay-lookup-ratio")
	b.ReportMetric(hitPct, "cache-hit-%")
}

// benchTableHarness regenerates the Table 7 rows with the given worker
// count; serial vs parallel compares harness wall-clock (the outputs are
// bit-identical either way — see TestParallelLatenciesMatchSerial).
func benchTableHarness(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		r, err := hbench.NewRunner()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := report.RunLatenciesN(r, report.Scale(10), workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableHarness_Serial(b *testing.B)   { benchTableHarness(b, 1) }
func BenchmarkTableHarness_Parallel(b *testing.B) { benchTableHarness(b, 4) }

// --- telemetry overhead (this PR) --------------------------------------------

// benchTelemetryOverhead runs the Table 7 latency battery on a fresh safe
// system with telemetry off, profiling, or profiling+tracing, reporting
// host wall-clock per battery.  Virtual cycles are identical in all three
// modes (TestTelemetryInvariance); this measures the host-side cost, which
// must stay near zero when telemetry is off.
func benchTelemetryOverhead(b *testing.B, profile, trace bool) {
	r, err := hbench.NewRunner()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Systems[vm.ConfigSafe]
	if profile {
		sys.VM.EnableProfiling()
	}
	if trace {
		sys.VM.EnableTrace(4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, op := range hbench.LatencyOps {
			if _, err := r.Measure(vm.ConfigSafe, op.Prog, op.Iters/10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTelemetry_Off(b *testing.B)          { benchTelemetryOverhead(b, false, false) }
func BenchmarkTelemetry_Profile(b *testing.B)      { benchTelemetryOverhead(b, true, false) }
func BenchmarkTelemetry_ProfileTrace(b *testing.B) { benchTelemetryOverhead(b, true, true) }
