# Tier-1 gate plus the race-sensitive packages this repo parallelizes.
GO ?= go

.PHONY: all build test vet lint race check equiv bench tables chaos netsmoke domsmoke smpsmoke16

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static diagnostics: go vet, then staticcheck/govulncheck when the host has
# them (CI images may; this repo never installs tools), then sva-lint's
# kernel-invariant rules over every built-in target.  The JSON artifact is
# what CI uploads.
lint: vet
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "lint: staticcheck not installed, skipping"
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "lint: govulncheck not installed, skipping"
	$(GO) run ./cmd/sva-lint -target all -json sva-lint.json

# Threaded-engine oracle gate: the engine-on and engine-off twins must
# produce bit-identical verdicts, virtual time and trap behavior across
# the exploit battery, the randomized programs and the vm-level suites.
equiv:
	$(GO) test -run 'Equivalence' ./internal/vm/ ./internal/exploits/ ./internal/safety/

# The bench harness and the fault campaign fan out goroutines per kernel
# config, per table job and per injection run, and SMP runs sibling VCPUs
# concurrently (with the threaded engine on by default, so the shared
# translation cache races too); race the whole tree at 1 and 4 host CPUs
# so both the serial and the parallel schedules are exercised.
race:
	$(GO) test -race -cpu=1,4 ./...

# Descriptor-ring serving smoke: the net table at reduced scale.  The
# harness fails the row on any lost request, bad checksum or malformed
# descriptor, so this is a conservation gate, not just a perf printout.
netsmoke:
	$(GO) run ./cmd/sva-bench -table=net -scale=8

# Multi-domain smoke: two domains boot off one shared image, trade a
# channel ping, one is killed and microrebooted while the sibling's sends
# fail closed — all under the race detector, because the two VMs share a
# read-only image and one translation cache.
domsmoke:
	$(GO) test -race -run 'TestDomainSmoke|TestConcurrentSiblings' ./internal/domain/

# 16-VCPU scaling smoke: boot and dispatch at the lifted VCPU ceiling,
# then an abbreviated fault campaign (one seed per class) against a
# 16-VCPU system — all under the race detector, because sixteen sibling
# VCPUs hammer the sharded metapool write paths and epoch reclamation
# concurrently.  Any host escape fails the target.
smpsmoke16:
	$(GO) test -race -run 'TestSMPDispatch|TestSMPSmoke16' ./internal/kernel/ ./internal/faultinject/campaign/

check: build lint test equiv race netsmoke domsmoke smpsmoke16

# Fixed-seed fault-injection smoke: three classes through sva-run plus a
# one-seed-per-class campaign table.  Any host escape fails the target.
chaos:
	$(GO) run ./cmd/sva-run -prog=pipeecho -arg=4096 -chaos=splay:7
	$(GO) run ./cmd/sva-run -prog=hello -chaos=oom:3
	$(GO) run ./cmd/sva-run -prog=pipeecho -arg=65536 -chaos=icrestore:1
	$(GO) run ./cmd/sva-bench -table=faults -seeds=1

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

tables:
	$(GO) run ./cmd/sva-bench -table=all -scale=8
