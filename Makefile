# Tier-1 gate plus the race-sensitive packages this repo parallelizes.
GO ?= go

.PHONY: all build test vet race check bench tables

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The bench harness fans out goroutines per kernel config and per table
# job; these packages carry the shared state that made that racy once.
race:
	$(GO) test -race ./internal/report ./internal/metapool ./internal/exploits

check: build vet test race

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

tables:
	$(GO) run ./cmd/sva-bench -table=all -scale=8
