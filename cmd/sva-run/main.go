// Command sva-run boots the guest kernel on the Secure Virtual Machine and
// runs a user program on it.
//
// Usage:
//
//	sva-run                         boot and print the banner
//	sva-run -config=sva-safe        boot the safety-checked kernel
//	sva-run -prog=hello             run a bundled demo program
//	sva-run -prog=pipeecho -arg=65536
//	sva-run -stats                  print the telemetry snapshot afterwards
//	sva-run -prog=hello -profile    attribute every virtual cycle of the run
//	sva-run -prog=hello -trace=-    dump the event trace as JSONL to stdout
//	sva-run -prog=hello -chaos=splay:7   run under seeded fault injection
//
// Configurations: native, sva-gcc, sva-llvm, sva-safe (§7.1).
//
// -chaos arms the deterministic fault injector (DESIGN.md §12) with a
// <class>:<seed> spec; classes are memflip, oom, diskio, netio, irq,
// icrestore and splay.  The run then reports what fired and how the SVM
// classified the outcome — a chaos run never exits through a Go panic.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"sva/internal/faultinject"
	"sva/internal/kernel"
	"sva/internal/telemetry"
	"sva/internal/userland"
	"sva/internal/vm"
)

func main() {
	cfgName := flag.String("config", "sva-safe", "kernel configuration (native|sva-gcc|sva-llvm|sva-safe)")
	prog := flag.String("prog", "", "user program to run (hello|fileio|forkwait|pipeecho|sigping|execer|brkprobe)")
	arg := flag.Uint64("arg", 4096, "argument passed to the program")
	stats := flag.Bool("stats", false, "print the unified telemetry snapshot")
	profile := flag.Bool("profile", false, "attribute virtual cycles to guest functions and SVA ops")
	trace := flag.String("trace", "", "dump the structured event trace as JSONL to this file (- for stdout)")
	chaos := flag.String("chaos", "", "arm seeded fault injection: <class>:<seed> (memflip|oom|diskio|netio|irq|icrestore|splay)")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile (pprof) to this file")
	memprofile := flag.String("memprofile", "", "write a host heap profile (pprof) to this file at exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sva-run:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	cfgs := map[string]vm.Config{
		"native": vm.ConfigNative, "sva-gcc": vm.ConfigSVAGCC,
		"sva-llvm": vm.ConfigSVALLVM, "sva-safe": vm.ConfigSafe,
	}
	cfg, ok := cfgs[*cfgName]
	if !ok {
		fail(fmt.Errorf("unknown config %q", *cfgName))
	}

	u := userland.BuildTestPrograms()
	sys, err := kernel.NewSystem(cfg, true, u.M)
	if err != nil {
		fail(err)
	}
	if err := sys.RegisterProgram("execchild", u.M.Func("execchild.start")); err != nil {
		fail(err)
	}
	fmt.Print(sys.ConsoleOutput())
	sys.VM.Mach.Console.ResetOutput()

	if *profile {
		sys.VM.EnableProfiling()
	}
	if *trace != "" {
		sys.VM.EnableTrace(4096)
	}

	var inj *faultinject.Injector
	if *chaos != "" {
		class, seed, err := faultinject.ParseSpec(*chaos)
		if err != nil {
			fail(err)
		}
		inj = faultinject.New(class, seed)
		sys.VM.InstallChaos(inj)
		if sys.VM.WatchdogFuel == 0 {
			sys.VM.WatchdogFuel = 5_000_000
		}
	}

	var progCycles uint64
	if *prog != "" {
		f := u.M.Func(*prog)
		if f == nil {
			fail(fmt.Errorf("unknown program %q", *prog))
		}
		c0 := sys.VM.Mach.CPU.Cycles
		got, err := sys.RunUser(f, *arg, 0)
		progCycles = sys.VM.Mach.CPU.Cycles - c0
		fmt.Print(sys.ConsoleOutput())
		switch {
		case err != nil && inj != nil:
			// Under chaos a terminated guest is a classified outcome, not a
			// tool failure.
			fmt.Printf("%s(%d) terminated: %v\n", *prog, *arg, err)
		case err != nil:
			fail(err)
		default:
			fmt.Printf("%s(%d) = %d\n", *prog, *arg, int64(got))
		}
		if n := len(sys.VM.Violations); n > 0 {
			fmt.Printf("safety violations: %d (first: %v)\n", n, sys.VM.Violations[0])
		}
	}

	if inj != nil {
		c := sys.VM.Counters
		fmt.Printf("chaos: class=%s seed=%d fired=%d oops=%d fail-stops=%d watchdog=%d quarantines=%d\n",
			inj.Class, inj.Seed, inj.Fired, c.Oops, c.FailStops, c.WatchdogFaults, c.Quarantines)
		for _, rec := range inj.Records() {
			fmt.Printf("  inject %-16s %s\n", rec.Site, rec.Detail)
		}
		if n := inj.Dropped(); n > 0 {
			fmt.Printf("  (%d older injection records dropped)\n", n)
		}
		if err := sys.VM.CheckHostInvariants(); err != nil {
			fail(fmt.Errorf("HOST ESCAPE: invariants broken after chaos run: %w", err))
		}
	}

	snap := sys.VM.Telemetry.Snapshot()
	if *stats {
		printStats(snap)
	}
	if *profile && snap.Profile != nil {
		fmt.Print(snap.Profile.Format(20, progCycles))
	}
	if *trace != "" {
		if err := dumpTrace(*trace, sys.VM.Trace()); err != nil {
			fail(err)
		}
	}
}

// printStats renders the -stats view of a unified telemetry snapshot: the
// VM counters, per-pool check activity, elision counts and syscall mix.
func printStats(s telemetry.Snapshot) {
	c := s.VM
	fmt.Printf("steps=%d kernel-steps=%d traps=%d switches=%d checks(bounds=%d ls=%d ic=%d) translations=%d\n",
		c.Steps, c.KSteps, c.Traps, c.Switches, c.ChecksBounds, c.ChecksLS, c.ChecksIC, c.Translations)
	fmt.Printf("elided: bounds=%d ls=%d\n", c.ElidedBounds, c.ElidedLS)
	active := 0
	for _, p := range s.Checks.Pools {
		st := p.Stats
		if st.BoundsChecks+st.LSChecks+st.ElidedBounds+st.ElidedLS+st.Violations == 0 {
			continue
		}
		active++
		fmt.Printf("pool %-16s objs=%-5d bounds=%-7d b-elide=%-7d ls=%-5d cache-hit=%-7d cache-miss=%-5d splay-depth=%d\n",
			p.Name, p.Objects, st.BoundsChecks, st.ElidedBounds, st.LSChecks,
			st.CacheHits, st.CacheMisses, p.SplayDepth)
	}
	fmt.Printf("pools: %d total, %d with check activity; indirect-call checks=%d violations=%d\n",
		len(s.Checks.Pools), active, s.Checks.ICChecks, s.Checks.ICViolations)
	if len(s.Kernel.Syscalls) > 0 {
		nums := make([]int64, 0, len(s.Kernel.Syscalls))
		for n := range s.Kernel.Syscalls {
			nums = append(nums, n)
		}
		sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
		fmt.Print("syscalls:")
		for _, n := range nums {
			fmt.Printf(" %d:%d", n, s.Kernel.Syscalls[n])
		}
		fmt.Println()
	}
	if s.Static != nil {
		fmt.Printf("static: bounds inserted=%d elided=%d, ls inserted=%d elided=%d, ic=%d\n",
			s.Static.BoundsChecksInserted, s.Static.BoundsChecksElided,
			s.Static.LSChecksInserted, s.Static.LSChecksElided, s.Static.ICChecksInserted)
	}
}

// dumpTrace writes the trace ring as JSONL to path ("-" for stdout).
func dumpTrace(path string, t *telemetry.Trace) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if n := t.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "sva-run: trace ring overflowed, %d oldest events dropped\n", n)
	}
	return telemetry.WriteJSONL(w, t.Events())
}
