// Command sva-run boots the guest kernel on the Secure Virtual Machine and
// runs a user program on it.
//
// Usage:
//
//	sva-run                         boot and print the banner
//	sva-run -config=sva-safe        boot the safety-checked kernel
//	sva-run -prog=hello             run a bundled demo program
//	sva-run -prog=pipeecho -arg=65536
//	sva-run -stats                  print VM counters afterwards
//
// Configurations: native, sva-gcc, sva-llvm, sva-safe (§7.1).
package main

import (
	"flag"
	"fmt"
	"os"

	"sva/internal/kernel"
	"sva/internal/userland"
	"sva/internal/vm"
)

func main() {
	cfgName := flag.String("config", "sva-safe", "kernel configuration (native|sva-gcc|sva-llvm|sva-safe)")
	prog := flag.String("prog", "", "user program to run (hello|fileio|forkwait|pipeecho|sigping|execer|brkprobe)")
	arg := flag.Uint64("arg", 4096, "argument passed to the program")
	stats := flag.Bool("stats", false, "print VM counters")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sva-run:", err)
		os.Exit(1)
	}

	cfgs := map[string]vm.Config{
		"native": vm.ConfigNative, "sva-gcc": vm.ConfigSVAGCC,
		"sva-llvm": vm.ConfigSVALLVM, "sva-safe": vm.ConfigSafe,
	}
	cfg, ok := cfgs[*cfgName]
	if !ok {
		fail(fmt.Errorf("unknown config %q", *cfgName))
	}

	u := userland.BuildTestPrograms()
	sys, err := kernel.NewSystem(cfg, true, u.M)
	if err != nil {
		fail(err)
	}
	if err := sys.RegisterProgram("execchild", u.M.Func("execchild.start")); err != nil {
		fail(err)
	}
	fmt.Print(sys.ConsoleOutput())
	sys.VM.Mach.Console.ResetOutput()

	if *prog != "" {
		f := u.M.Func(*prog)
		if f == nil {
			fail(fmt.Errorf("unknown program %q", *prog))
		}
		got, err := sys.RunUser(f, *arg, 0)
		if err != nil {
			fail(err)
		}
		fmt.Print(sys.ConsoleOutput())
		fmt.Printf("%s(%d) = %d\n", *prog, *arg, int64(got))
		if n := len(sys.VM.Violations); n > 0 {
			fmt.Printf("safety violations: %d (first: %v)\n", n, sys.VM.Violations[0])
		}
	}
	if *stats {
		c := sys.VM.Counters
		fmt.Printf("steps=%d kernel-steps=%d traps=%d switches=%d checks(bounds=%d ls=%d ic=%d) translations=%d\n",
			c.Steps, c.KSteps, c.Traps, c.Switches, c.ChecksBounds, c.ChecksLS, c.ChecksIC, c.Translations)
	}
}
