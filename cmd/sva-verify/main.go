// Command sva-verify is the bytecode verifier: the small, trusted checker
// of paper §5.  It decodes a bytecode module, runs structural SSA/type
// verification, and re-checks the metapool annotations the (untrusted)
// safety-checking compiler produced.
//
// Usage:
//
//	sva-verify mod.sva            verify a bytecode file
//	sva-verify -kernel            build + safety-compile + verify the kernel
//	sva-verify -inject aliasing   demonstrate detection of an injected bug
package main

import (
	"flag"
	"fmt"
	"os"

	"sva/internal/bytecode"
	"sva/internal/ir"
	"sva/internal/kernel"
	"sva/internal/safety"
	"sva/internal/typecheck"
)

func main() {
	useKernel := flag.Bool("kernel", false, "verify the bundled safety-compiled kernel")
	dis := flag.Bool("dis", false, "print the module's textual IR (disassemble)")
	inject := flag.String("inject", "", "inject a pointer-analysis bug first (aliasing|edge|th-claim|split|bogus-elision|bogus-range-elision)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sva-verify:", err)
		os.Exit(1)
	}

	var mod *ir.Module
	if *useKernel {
		img := kernel.Build()
		if _, err := safety.Compile(kernel.SafetyConfig(true), img.Kernel); err != nil {
			fail(err)
		}
		mod = img.Kernel
	} else {
		if flag.NArg() != 1 {
			fail(fmt.Errorf("need a bytecode file or -kernel"))
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		if blob, serr := os.ReadFile(flag.Arg(0) + ".sig"); serr == nil {
			if err := bytecode.VerifyFile(data, blob); err != nil {
				fail(err)
			}
			fmt.Println("signature: OK")
		}
		mod, err = bytecode.Decode(data)
		if err != nil {
			fail(err)
		}
	}

	if *inject != "" {
		kinds := map[string]typecheck.BugKind{
			"aliasing":            typecheck.BugAliasing,
			"edge":                typecheck.BugEdge,
			"th-claim":            typecheck.BugTHClaim,
			"split":               typecheck.BugSplit,
			"bogus-elision":       typecheck.BugBogusElision,
			"bogus-range-elision": typecheck.BugBogusRangeElision,
		}
		kind, ok := kinds[*inject]
		if !ok {
			fail(fmt.Errorf("unknown bug kind %q", *inject))
		}
		desc, ok := typecheck.InjectBug(kind, 0, mod.Metapools, mod)
		if !ok {
			fail(fmt.Errorf("no injection site for %s", *inject))
		}
		fmt.Println("injected:", desc)
	}

	if *dis {
		fmt.Print(mod.String())
	}
	structural := ir.VerifyModule(mod)
	for _, e := range structural {
		fmt.Println("structural:", e)
	}
	c := typecheck.New(mod.Metapools)
	pools := c.Check(mod)
	for i, e := range pools {
		if i >= 20 {
			fmt.Printf("... and %d more\n", len(pools)-i)
			break
		}
		fmt.Println("metapool:", e)
	}
	if len(structural)+len(pools) == 0 {
		fmt.Printf("%s: OK (%d functions, %d metapools)\n", mod.Name, len(mod.Funcs), len(mod.Metapools))
		return
	}
	os.Exit(1)
}
