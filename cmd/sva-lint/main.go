// Command sva-lint statically checks SVA kernel-usage invariants: it runs
// the internal/analysis value-range framework plus the internal/lint rule
// engine over compiled modules or guest bytecode and reports findings as
// human-readable lines and/or a JSON artifact.
//
// Usage:
//
//	sva-lint                     lint the safety-compiled kernel + userland + apps
//	sva-lint -target userland    lint one built-in target (kernel|userland|apps|all)
//	sva-lint -json out.json      also write findings as JSON
//	sva-lint prog.sva ...        lint bytecode files instead of built-in targets
//
// Exit status is 1 when any finding is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sva/internal/apps"
	"sva/internal/bytecode"
	"sva/internal/ir"
	"sva/internal/kernel"
	"sva/internal/lint"
	"sva/internal/pointer"
	"sva/internal/safety"
	"sva/internal/userland"
)

func main() {
	target := flag.String("target", "all", "built-in lint target: kernel|userland|apps|all")
	jsonOut := flag.String("json", "", "write findings to this file as JSON")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sva-lint:", err)
		os.Exit(2)
	}

	var findings []lint.Finding
	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fail(err)
			}
			mod, err := bytecode.Decode(data)
			if err != nil {
				fail(err)
			}
			findings = append(findings, lint.Run(nil, mod)...)
		}
	} else {
		runKernel := *target == "kernel" || *target == "all"
		runUser := *target == "userland" || *target == "all"
		runApps := *target == "apps" || *target == "all"
		if !runKernel && !runUser && !runApps {
			fail(fmt.Errorf("unknown target %q", *target))
		}
		if runKernel {
			img := kernel.Build()
			prog, err := safety.Compile(kernel.SafetyConfig(true), img.Kernel)
			if err != nil {
				fail(err)
			}
			findings = append(findings, lint.Run(prog.Res, img.Kernel)...)
		}
		if runUser {
			findings = append(findings, lintModule(userland.BuildTestPrograms().M)...)
		}
		if runApps {
			findings = append(findings, lintModule(apps.BuildAppsModule().M)...)
		}
	}

	if *jsonOut != "" {
		if findings == nil {
			findings = []lint.Finding{}
		}
		blob, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sva-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("sva-lint: OK (0 findings)")
}

func lintModule(m *ir.Module) []lint.Finding {
	var pt *pointer.Result
	return lint.Run(pt, m)
}
