// Command sva-compile runs the safety-checking compiler on SVA bytecode: it
// decodes a module, runs the pointer analysis and check insertion, and
// writes the instrumented, metapool-annotated bytecode back out.
//
// With -kernel, it builds the bundled guest kernel, safety-compiles it and
// writes its bytecode — the way a distribution would ship the kernel.
//
// Usage:
//
//	sva-compile -kernel -o vkernel.sva          compile the guest kernel
//	sva-compile -kernel -entire -o vkernel.sva  include mm/lib/char drivers
//	sva-compile -in mod.sva -o mod.safe.sva     compile arbitrary bytecode
//	sva-compile -kernel -metrics                print the Table 9 metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"sva/internal/bytecode"
	"sva/internal/ir"
	"sva/internal/kernel"
	"sva/internal/safety"
)

func main() {
	inPath := flag.String("in", "", "input bytecode module")
	outPath := flag.String("o", "", "output bytecode path")
	useKernel := flag.Bool("kernel", false, "compile the bundled guest kernel")
	entire := flag.Bool("entire", false, "compile the entire kernel (no subsystem exclusions)")
	metrics := flag.Bool("metrics", false, "print static safety metrics")
	elide := flag.Bool("elide", true, "run redundant run-time check elimination (§7.1.3)")
	sign := flag.Bool("sign", false, "write a detached Ed25519 signature next to -o")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sva-compile:", err)
		os.Exit(1)
	}

	var mod *ir.Module
	cfg := kernel.SafetyConfig(!*entire)
	cfg.DisableElide = !*elide
	switch {
	case *useKernel:
		mod = kernel.Build().Kernel
	case *inPath != "":
		data, err := os.ReadFile(*inPath)
		if err != nil {
			fail(err)
		}
		m, err := bytecode.Decode(data)
		if err != nil {
			fail(err)
		}
		mod = m
	default:
		fail(fmt.Errorf("need -kernel or -in"))
	}

	prog, err := safety.Compile(cfg, mod)
	if err != nil {
		fail(err)
	}
	if errs := ir.VerifyModule(mod); len(errs) != 0 {
		fail(fmt.Errorf("instrumented module does not verify: %v", errs[0]))
	}
	fmt.Printf("safety-compiled %s: %d metapools, %d bounds checks (%d elided), %d ls checks (%d elided), %d indirect-call checks\n",
		mod.Name, len(prog.Descs), prog.Metrics.BoundsChecksInserted,
		prog.Metrics.BoundsChecksElided, prog.Metrics.LSChecksInserted,
		prog.Metrics.LSChecksElided, prog.Metrics.ICChecksInserted)
	if *metrics {
		fmt.Print(prog.Metrics.String())
	}
	if *outPath != "" {
		data, err := bytecode.Encode(mod)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fail(err)
		}
		h := bytecode.Hash(data)
		fmt.Printf("wrote %s (%d bytes, sha256 %x)\n", *outPath, len(data), h[:8])
		if *sign {
			signer, err := bytecode.NewSigner(nil)
			if err != nil {
				fail(err)
			}
			blob := signer.SignFile(data)
			if err := os.WriteFile(*outPath+".sig", blob, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s.sig (Ed25519, key embedded)\n", *outPath)
		}
	}
}
