// Command sva-bench regenerates the paper's evaluation tables from the
// reproduction.
//
// Usage:
//
//	sva-bench -table=4          porting effort
//	sva-bench -table=5          application latency overheads
//	sva-bench -table=6          thttpd bandwidth reduction
//	sva-bench -table=7          kernel operation latency overheads
//	sva-bench -table=8          kernel bandwidth reduction
//	sva-bench -table=9          static safety metrics
//	sva-bench -table=checks     run-time check / last-hit cache statistics
//	sva-bench -table=profile    virtual-cycle profile of the Table 7 battery
//	sva-bench -table=exploits   §7.2 exploit detection matrix
//	sva-bench -table=tcb        §5 verifier bug-injection experiment
//	sva-bench -table=ablation   §4.8 cloning/devirtualization ablation
//	sva-bench -table=faults     fault-injection campaign outcome matrix
//	sva-bench -table=all        everything
//	sva-bench -table=smp        SMP syscall-throughput scaling at 1/2/4/8/16/32 VCPUs
//	                            plus a concurrent-registration microbench
//	sva-bench -table=smp -wallclock   add host wall-clock microbench rows (nondeterministic)
//	sva-bench -table=net        descriptor-ring socket serving at 1/2/4 VCPUs
//	sva-bench -table=domains    multi-domain serving at 1/2/4 domains + supervised microreboot recovery
//	sva-bench -table=engine     threaded-code engine wall-clock speedup (not in "all": host-dependent)
//	sva-bench -seeds=25         seeds per fault class for -table=faults
//	sva-bench -scale=4          divide iteration counts by 4 (quick run)
//	sva-bench -workers=1        serial generation (default: one worker per CPU)
//	sva-bench -benchjson=out.json      dump numeric rows as machine-readable JSON
//	sva-bench -baseline=BENCH_seed.json  print per-row deltas vs a saved dump
//	sva-bench -cpuprofile=cpu.pprof    host-level CPU profile of the bench run
//	sva-bench -memprofile=mem.pprof    host heap profile at exit
//
// Every table is generated on its own deterministic virtual machines, so
// table sections are independent jobs: with -workers > 1 they run
// concurrently on a bounded worker pool, and the config×workload runs
// inside Tables 5-8 fan out one goroutine per kernel configuration.  The
// printed tables are bit-identical to a serial run (-workers=1).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"sva/internal/hbench"
	"sva/internal/report"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate (4..9, checks, profile, exploits, tcb, ablation, faults, smp, net, domains, all)")
	scale := flag.Uint64("scale", 1, "divide iteration counts (1 = full run)")
	seeds := flag.Int("seeds", 25, "seeds per fault class for -table=faults")
	workers := flag.Int("workers", report.DefaultWorkers(), "max concurrent table jobs and per-table configurations (1 = serial)")
	wallclock := flag.Bool("wallclock", false, "append host wall-clock rows to the -table=smp registration microbench (nondeterministic)")
	benchjson := flag.String("benchjson", "", "write numeric table rows as JSON to this file")
	baseline := flag.String("baseline", "", "print per-row deltas against a saved -benchjson dump")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile (pprof) to this file")
	memprofile := flag.String("memprofile", "", "write a host heap profile (pprof) to this file at exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sva-bench:", err)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	s := report.Scale(*scale)
	w := *workers
	metrics := &report.MetricSet{}
	// -table takes a comma-separated list ("-table=5,7,8"); "all" selects
	// every table.
	wanted := map[string]bool{}
	for _, t := range strings.Split(*table, ",") {
		wanted[strings.TrimSpace(t)] = true
	}
	want := func(name string) bool { return wanted["all"] || wanted[name] }

	// Each job renders one or more related sections; related tables that
	// share booted systems stay inside a single job so their relative
	// execution order (and thus every cycle count) matches a serial run.
	var jobs []report.TableJob
	add := func(name string, gen func() (string, error)) {
		jobs = append(jobs, report.TableJob{Name: name, Gen: gen})
	}
	if want("api") {
		add("api", func() (string, error) { return report.APITable(), nil })
	}
	if want("fig2") {
		add("fig2", report.Figure2)
	}
	if want("4") {
		add("table4", func() (string, error) { return report.Table4(), nil })
	}
	if want("5") || want("6") {
		add("tables5-6", func() (string, error) {
			rows, err := report.RunAppsN(s, w)
			if err != nil {
				return "", err
			}
			report.RecordAppRows(metrics, rows)
			var parts []string
			if want("5") {
				parts = append(parts, report.Table5(rows))
			}
			if want("6") {
				parts = append(parts, report.Table6(rows))
			}
			return strings.Join(parts, "\n"), nil
		})
	}
	if want("7") || want("8") || want("checks") || want("profile") {
		add("tables7-8", func() (string, error) {
			r, err := hbench.NewRunner()
			if err != nil {
				return "", err
			}
			var parts []string
			if want("7") {
				rows, err := report.RunLatenciesN(r, s, w)
				if err != nil {
					return "", err
				}
				report.RecordBenchRows(metrics, "table7", rows)
				parts = append(parts, report.Table7(rows))
			}
			if want("8") {
				rows, err := report.RunBandwidthsN(r, s, w)
				if err != nil {
					return "", err
				}
				report.RecordBenchRows(metrics, "table8", rows)
				parts = append(parts, report.Table8(rows))
			}
			if want("checks") {
				t, err := report.ChecksTable(r, s)
				if err != nil {
					return "", err
				}
				parts = append(parts, t)
			}
			if want("profile") {
				t, err := report.ProfileTable(r, s)
				if err != nil {
					return "", err
				}
				parts = append(parts, t)
			}
			return strings.Join(parts, "\n"), nil
		})
	}
	if want("9") {
		add("table9", report.Table9)
	}
	if want("smp") {
		add("smp", func() (string, error) {
			rows, err := report.RunSMPN(s, w)
			if err != nil {
				return "", err
			}
			report.RecordSMPRows(metrics, rows)
			// The registration microbench's model rows are deterministic
			// virtual time; its wall-clock rows are host-bound and noisy,
			// so they stay behind -wallclock and are never recorded into
			// the metrics JSON.
			return report.SMPTable(rows) + "\n" + report.ConcurrentRegBench(8, 20000, *wallclock), nil
		})
	}
	if want("net") {
		add("net", func() (string, error) {
			rows, err := report.RunNetN(s, w)
			if err != nil {
				return "", err
			}
			report.RecordNetRows(metrics, rows)
			return report.NetTable(rows), nil
		})
	}
	if want("domains") {
		add("domains", func() (string, error) {
			rows, recs, err := report.RunDomainsN(s, w)
			if err != nil {
				return "", err
			}
			report.RecordDomainRows(metrics, rows, recs)
			return report.DomainsTable(rows, recs), nil
		})
	}
	// The engine table measures host wall-clock, so it is never part of
	// "all" (every other table is deterministic virtual time) and must be
	// requested by name.
	if wanted["engine"] {
		add("engine", func() (string, error) {
			rows, gm, err := report.RunEngine(s)
			if err != nil {
				return "", err
			}
			report.RecordEngineRows(metrics, rows, gm)
			return report.EngineTable(rows, gm), nil
		})
	}
	if want("exploits") {
		add("exploits", func() (string, error) { return report.ExploitTableN(w) })
	}
	if want("ablation") {
		add("ablation", report.Ablation)
	}
	if want("tcb") {
		add("tcb", report.TCBTable)
	}
	if want("faults") {
		add("faults", func() (string, error) { return report.FaultTable(*seeds, w) })
	}

	out, err := report.RunJobs(jobs, w)
	if err != nil {
		fail(err)
	}
	for _, t := range out {
		fmt.Println(t)
	}

	if *benchjson != "" {
		if err := metrics.WriteJSON(*benchjson); err != nil {
			fail(err)
		}
	}
	if *baseline != "" {
		base, err := report.ReadBaseline(*baseline)
		if err != nil {
			fail(err)
		}
		fmt.Println(report.DeltaReport(base, metrics.Metrics()))
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}
}
