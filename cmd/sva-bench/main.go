// Command sva-bench regenerates the paper's evaluation tables from the
// reproduction.
//
// Usage:
//
//	sva-bench -table=4          porting effort
//	sva-bench -table=5          application latency overheads
//	sva-bench -table=6          thttpd bandwidth reduction
//	sva-bench -table=7          kernel operation latency overheads
//	sva-bench -table=8          kernel bandwidth reduction
//	sva-bench -table=9          static safety metrics
//	sva-bench -table=exploits   §7.2 exploit detection matrix
//	sva-bench -table=tcb        §5 verifier bug-injection experiment
//	sva-bench -table=ablation   §4.8 cloning/devirtualization ablation
//	sva-bench -table=all        everything
//	sva-bench -scale=4          divide iteration counts by 4 (quick run)
package main

import (
	"flag"
	"fmt"
	"os"

	"sva/internal/hbench"
	"sva/internal/report"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate (4..9, exploits, tcb, all)")
	scale := flag.Uint64("scale", 1, "divide iteration counts (1 = full run)")
	flag.Parse()

	s := report.Scale(*scale)
	want := func(name string) bool { return *table == "all" || *table == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sva-bench:", err)
		os.Exit(1)
	}

	if want("api") {
		fmt.Println(report.APITable())
	}
	if want("fig2") {
		t, err := report.Figure2()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
	if want("4") {
		fmt.Println(report.Table4())
	}
	if want("5") || want("6") {
		rows, err := report.RunApps(s)
		if err != nil {
			fail(err)
		}
		if want("5") {
			fmt.Println(report.Table5(rows))
		}
		if want("6") {
			fmt.Println(report.Table6(rows))
		}
	}
	if want("7") || want("8") {
		r, err := hbench.NewRunner()
		if err != nil {
			fail(err)
		}
		if want("7") {
			rows, err := report.RunLatencies(r, s)
			if err != nil {
				fail(err)
			}
			fmt.Println(report.Table7(rows))
		}
		if want("8") {
			rows, err := report.RunBandwidths(r, s)
			if err != nil {
				fail(err)
			}
			fmt.Println(report.Table8(rows))
		}
	}
	if want("9") {
		t, err := report.Table9()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
	if want("exploits") {
		t, err := report.ExploitTable()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
	if want("ablation") {
		t, err := report.Ablation()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
	if want("tcb") {
		t, err := report.TCBTable()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
}
