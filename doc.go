// Package sva is a from-scratch Go reproduction of "Secure Virtual
// Architecture: A Safe Execution Environment for Commodity Operating
// Systems" (Criswell, Lenharth, Dhurjati, Adve — SOSP 2007).
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table of the paper's evaluation; the implementation
// lives under internal/ (see DESIGN.md for the system inventory) and the
// runnable entry points under cmd/ and examples/.
package sva
